type t = {
  cfg : Config.t;
  heap : Repro_mem.Page_store.t;
  mem_path : Mem_path.t;
  stats : Stats.t;
  san : Repro_san.Checker.t option;
  tel : Telemetry.t option;
  mutable timeline : Stats.t list; (* per-launch deltas, newest first *)
  mutable windows : Stats.t array list; (* per-launch window rows, newest first *)
  mutable spans : Telemetry.kernel_span list; (* newest first *)
  mutable launches : int;
  mutable keep_traces : bool;
  mutable kept : Trace.t array list; (* retained launches, newest first *)
}

let fmax (a : float) (b : float) = if a >= b then a else b

let create ?(config = Config.default) ?san ?telemetry ~heap () =
  Config.validate config;
  let tel =
    match telemetry with
    | Some c when Telemetry.config_enabled c -> Some (Telemetry.create c)
    | Some _ | None -> None
  in
  let mem_path = Mem_path.create config in
  (match tel with
   | Some { Telemetry.ring = Some ring; _ } -> Mem_path.set_ring mem_path (Some ring)
   | Some _ | None -> ());
  {
    cfg = config;
    heap;
    mem_path;
    stats = Stats.create ();
    san;
    tel;
    timeline = [];
    windows = [];
    spans = [];
    launches = 0;
    keep_traces = false;
    kept = [];
  }

let config t = t.cfg

let heap t = t.heap

let set_vm t vm = Mem_path.set_vm t.mem_path vm

let vm t = Mem_path.vm t.mem_path

let launch t ~n_threads kernel =
  if n_threads <= 0 then invalid_arg "Device.launch: n_threads must be positive";
  let warp_size = t.cfg.Config.warp_size in
  let n_warps = Repro_util.Mathx.ceil_div n_threads warp_size in
  let traces =
    Array.init n_warps (fun warp_id ->
        let first = warp_id * warp_size in
        let width = min warp_size (n_threads - first) in
        let lanes = Array.init width (fun lane -> first + lane) in
        let ctx = Warp_ctx.create ?san:t.san ~heap:t.heap ~warp_id ~lanes () in
        kernel ctx;
        Warp_ctx.trace ctx)
  in
  (* Each launch counts into its own [Stats.t] which is then folded into
     the cumulative totals, so the per-kernel deltas of [kernel_timeline]
     sum (bit-for-bit, including the float counters) to [stats]. *)
  let launch_stats = Stats.create () in
  let san_delta () =
    (* Sanitizer violations detected during this launch's functional
       phase belong to this launch's delta, keeping the
       timeline-sums-to-totals invariant intact. *)
    match t.san with
    | None -> ()
    | Some san ->
      Stats.count_san_violations launch_stats
        (Repro_san.Checker.take_kernel_delta san)
  in
  (match t.tel with
   | None ->
     let cycles = Sm.run t.cfg t.mem_path ~stats:launch_stats ~traces in
     Stats.add_cycles launch_stats cycles;
     san_delta ()
   | Some tel ->
     (* Launches concatenate on one absolute time axis whose origin is
        the cumulative cycle count so far. *)
     let base = Stats.cycles t.stats in
     (match tel.Telemetry.ring with
      | Some ring -> Telemetry.Ring.begin_launch ring ~base
      | None -> ());
     (match tel.Telemetry.sampler with
      | Some sampler -> Telemetry.Sampler.begin_launch sampler
      | None -> ());
     let cycles = Sm.run ~telemetry:tel t.cfg t.mem_path ~stats:launch_stats ~traces in
     (match tel.Telemetry.ring with
      | Some ring ->
        (* The span covers trailing write-through DRAM drain the ring
           may have recorded past the last warp's retirement. *)
        let dur = fmax cycles (Telemetry.Ring.max_end ring -. base) in
        t.spans <- { Telemetry.index = t.launches; start = base; dur } :: t.spans
      | None -> ());
     (match tel.Telemetry.sampler with
      | None ->
        (* Ring only: counters went straight into [launch_stats]. *)
        Stats.add_cycles launch_stats cycles;
        san_delta ();
        (match tel.Telemetry.ring with
         | Some ring ->
           Stats.count_trace_dropped launch_stats (Telemetry.Ring.take_dropped ring)
         | None -> ())
      | Some sampler ->
        (* Windowed: the engine counted into per-window rows. Fold them
           in order into the launch delta — the identical association a
           plain run performs, so totals (cycles included, see
           [Sampler.finish_launch]) match a telemetry-off run bit-for-bit
           on every integer counter and on cycles. Launch-scoped counts
           with no cycle of their own (sanitizer delta, ring drops) land
           in the last window. *)
        Telemetry.Sampler.finish_launch sampler ~cycles;
        let rows = Telemetry.Sampler.take sampler in
        let last = rows.(Array.length rows - 1) in
        (match t.san with
         | None -> ()
         | Some san ->
           Stats.count_san_violations last
             (Repro_san.Checker.take_kernel_delta san));
        (match tel.Telemetry.ring with
         | Some ring ->
           Stats.count_trace_dropped last (Telemetry.Ring.take_dropped ring)
         | None -> ());
        Array.iter (fun row -> Stats.add launch_stats row) rows;
        t.windows <- rows :: t.windows));
  Stats.add t.stats launch_stats;
  t.timeline <- launch_stats :: t.timeline;
  t.launches <- t.launches + 1;
  if t.keep_traces then t.kept <- traces :: t.kept

let retain_traces t keep =
  t.keep_traces <- keep;
  if not keep then t.kept <- []

let retained_traces t = List.rev t.kept

let stats t = t.stats

let kernel_timeline t = List.rev t.timeline

let window_timeline t = List.rev t.windows

let sample_window t =
  match t.tel with
  | Some { Telemetry.sampler = Some s; _ } -> Some (Telemetry.Sampler.window s)
  | Some _ | None -> None

let telemetry_dump t =
  match t.tel with
  | Some ({ Telemetry.ring = Some ring; _ } as tel) ->
    Some
      {
        Telemetry.n_sms = t.cfg.Config.n_sms;
        window =
          (match tel.Telemetry.sampler with
           | Some s -> Telemetry.Sampler.window s
           | None -> 0);
        events = Telemetry.events_of_ring ring;
        kernels = List.rev t.spans;
        dropped = Telemetry.Ring.all_dropped ring;
      }
  | Some _ | None -> None

let reset_stats t =
  Stats.reset t.stats;
  Mem_path.reset t.mem_path;
  t.timeline <- [];
  t.windows <- [];
  t.spans <- [];
  t.launches <- 0;
  t.kept <- [];
  match t.tel with
  | Some { Telemetry.ring = Some ring; _ } -> Telemetry.Ring.clear ring
  | Some _ | None -> ()

let launches t = t.launches
