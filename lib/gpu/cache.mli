(** Sectored set-associative cache model (tag state only).

    Lines are 128 B made of four 32 B sectors, as in Volta's L1 and L2.
    A line can be resident with only some sectors valid: a miss on a
    resident line fetches just the missing sector, a miss on an absent
    line evicts the LRU way of the set and fetches the accessed sector.
    Hit rates are fully emergent — this is what makes the allocator-
    packing effects of SharedOA (Fig. 9) come out of the model instead of
    being assumed. *)

type geometry = {
  size_bytes : int;       (** Total capacity; must be sets*ways*line. *)
  line_bytes : int;       (** 128. *)
  ways : int;             (** Associativity. *)
}

val geometry : size_bytes:int -> line_bytes:int -> ways:int -> geometry
(** Validates divisibility and that both the set count and the sector
    count per line are powers of two — the lookup path is pure shift/mask,
    no div/mod. *)

type t

val create : geometry -> t

val access : t -> sector:int -> [ `Hit | `Miss ]
(** Look up one 32 B sector (global sector index from
    {!Repro_mem.Vaddr.sector_of}), updating recency and, on a miss,
    installing the sector. *)

val probe : t -> sector:int -> bool
(** Non-mutating presence check; used by tests. *)

val flush : t -> unit
(** Invalidate everything (kernel-launch boundary for the L1). *)

val geometry_of : t -> geometry

(** Raw tag-state access for the fused replay loop ({!Sm}); hoisted once
    per launch so the per-sector lookup is call-free. Mutating these
    outside an exact [access] re-implementation breaks the model. *)
module Raw : sig
  val tags : t -> int array
  (** Resident line per slot; -1 invalid. *)

  val valid : t -> int array
  (** Per-slot valid-sector bitmask. *)

  val stamps : t -> int array
  (** Per-slot LRU stamps. *)

  val clock_cell : t -> int array
  (** 1-cell LRU clock. *)

  val ways : t -> int
  val sector_shift : t -> int
  val sector_mask : t -> int
  val set_mask : t -> int
end
