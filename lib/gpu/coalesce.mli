(** Per-warp memory-access coalescing.

    NVIDIA GPUs service a warp's global access as a set of 32-byte sector
    transactions: lanes touching the same sector share one transaction.
    This is the mechanism behind the whole paper — a diverged vTable*
    load (32 lanes, 32 different objects) costs up to 32 transactions,
    while 32 lanes reading the same range-table node cost one. *)

val sectors_into : buf:int array -> int array -> off:int -> len:int -> int
(** [sectors_into ~buf addrs ~off ~len] writes the distinct ascending
    sector ids of [addrs.(off .. off+len-1)] into [buf.(0 ..)] and returns
    how many it wrote (1..len). Allocation-free: a monomorphic insertion
    sort with inline deduplication over a caller-owned scratch buffer of at
    least [len] entries. Tag bits on the addresses are ignored. This is
    the replay-path coalescer; {!sectors} is the naive reference. *)

val sectors_into_unsafe : buf:int array -> int array -> off:int -> len:int -> int
(** {!sectors_into} with the per-element bounds checks elided. Only for
    callers whose [off]/[len] come from trace columns (in range by
    construction) and whose [buf] holds at least [len] entries — the
    fused replay loop. Results are identical to {!sectors_into}. *)

val sectors : int array -> int array
(** [sectors addrs] is the sorted array of distinct 32 B sector indices
    touched by the given canonical byte addresses. *)

val transaction_count : int array -> int
(** [Array.length (sectors addrs)] without building the intermediate
    array's duplicates; 1..warp-size. *)
