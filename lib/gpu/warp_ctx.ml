module Page_store = Repro_mem.Page_store

type t = {
  heap : Page_store.t;
  trace : Trace.t;
  warp_id : int;
  lanes : int array;
  san : Repro_san.Checker.t option;
}

let create ?san ~heap ~warp_id ~lanes () =
  if Array.length lanes = 0 then invalid_arg "Warp_ctx.create: empty warp";
  { heap; trace = Trace.create (); warp_id; lanes; san }

let trace t = t.trace

let warp_id t = t.warp_id

let tids t = t.lanes

let n_active t = Array.length t.lanes

let check_width t a label =
  if Array.length a <> n_active t then
    invalid_arg ("Warp_ctx." ^ label ^ ": per-lane array width mismatch")

let san_access_of_label label =
  match label with
  | Label.Vtable_load -> Repro_san.Checker.Vtable
  | Label.Vfunc_load -> Repro_san.Checker.Vfunc
  | _ -> Repro_san.Checker.Other

let sanitize t ~label ~width addrs =
  match t.san with
  | None -> ()
  | Some san ->
    Repro_san.Checker.check_access san ~warp:t.warp_id ~tids:t.lanes
      ~access:(san_access_of_label label) ~what:(Label.slug label) ~width
      ~addrs

(* Tag stripping is fused into arena emission ([Trace.emit_mem]); the
   functional access reads the canonical addresses back from the arena
   slice just written, so no intermediate stripped array is built. *)
let do_load t ~width ~blocking ~label addrs =
  check_width t addrs "load";
  sanitize t ~label ~width addrs;
  let off = Trace.emit_load t.trace ~label ~blocking addrs in
  let arena = Trace.arena t.trace in
  Array.init (Array.length addrs) (fun i ->
      Page_store.load_byte_width t.heap arena.(off + i) ~width)

let load ?(width = 8) t ~label addrs = do_load t ~width ~blocking:true ~label addrs

let load_nonblocking ?(width = 8) t ~label addrs =
  do_load t ~width ~blocking:false ~label addrs

let store ?(width = 8) t ~label addrs values =
  check_width t addrs "store";
  check_width t values "store";
  sanitize t ~label ~width addrs;
  let off = Trace.emit_store t.trace ~label addrs in
  let arena = Trace.arena t.trace in
  Array.iteri
    (fun i v -> Page_store.store_byte_width t.heap arena.(off + i) ~width v)
    values

let compute ?(n = 1) ?(blocking = false) t ~label =
  Trace.emit_compute t.trace ~label ~n ~blocking ~active:(n_active t)

let ctrl ?(n = 1) t ~label = Trace.emit_ctrl t.trace ~label ~n ~active:(n_active t)

let const_load t ~label =
  Trace.emit_const_load t.trace ~label ~active:(n_active t)

let call_indirect t ~label =
  Trace.emit_call_indirect t.trace ~label ~active:(n_active t)

let call_direct t ~label =
  Trace.emit_call_direct t.trace ~label ~active:(n_active t)

let gather idxs a = Array.map (fun i -> a.(i)) idxs

let scatter idxs dst src = Array.iteri (fun k i -> dst.(i) <- src.(k)) idxs

(* Distinct keys in first-occurrence order, with the member indices of each
   group. Warps are at most 32 lanes wide so association lists are fine. *)
let group_by_key keys =
  let groups = ref [] in
  Array.iteri
    (fun i key ->
      match List.assoc_opt key !groups with
      | Some members -> members := i :: !members
      | None -> groups := (key, ref [ i ]) :: !groups)
    keys;
  List.rev_map (fun (key, members) -> (key, List.rev !members)) !groups

let diverge t ~label ~keys body =
  check_width t keys "diverge";
  let groups = group_by_key keys in
  (* One control instruction decides the branch; each extra executed subset
     costs a reconvergence-stack push, also modelled as a control op. *)
  List.iter
    (fun (key, members) ->
      let idxs = Array.of_list members in
      let sub = { t with lanes = gather idxs t.lanes } in
      ctrl sub ~label;
      body ~key sub idxs)
    groups

let if_ t ~label ~pred then_ else_ =
  check_width t (Array.map (fun b -> if b then 1 else 0) pred) "if_";
  let keys = Array.map (fun b -> if b then 1 else 0) pred in
  diverge t ~label ~keys (fun ~key sub idxs ->
      if key = 1 then then_ sub idxs
      else match else_ with Some f -> f sub idxs | None -> ())
