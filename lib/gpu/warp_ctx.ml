module Page_store = Repro_mem.Page_store

type t = {
  heap : Page_store.t;
  trace : Trace.t;
  warp_id : int;
  lanes : int array;
  san : Repro_san.Checker.t option;
  (* Interned-engine emission: callers with a fused fast path (Garray,
     Dispatch, the divergence machinery below) key on this flag, compute
     per-lane addresses into [ascratch] and emit through [load_into]/
     [store_from] instead of building intermediate arrays. The flag is
     never set on sanitized runs (those want exact-width address
     arrays), so the legacy paths double as the sanitizer's. *)
  fused : bool;
  mutable ascratch : int array;
  (* Cached identity index maps ([|0; ...; n-1|]) per width, handed to
     divergence bodies when a branch is warp-uniform. Bodies treat the
     index map as read-only (they only gather through it), so sharing
     one array per width is safe. *)
  mutable idents : int array array;
}

let create ?san ?(fused = false) ?trace ~heap ~warp_id ~lanes () =
  if Array.length lanes = 0 then invalid_arg "Warp_ctx.create: empty warp";
  let trace = match trace with Some t -> t | None -> Trace.create () in
  { heap; trace; warp_id; lanes; san; fused; ascratch = [||]; idents = [||] }

let fused t = t.fused

let addr_scratch t n =
  if Array.length t.ascratch < n then t.ascratch <- Array.make (max 32 n) 0;
  t.ascratch

let identity t n =
  if Array.length t.idents < n + 1 then begin
    let fresh = Array.make (n + 1) [||] in
    Array.blit t.idents 0 fresh 0 (Array.length t.idents);
    t.idents <- fresh
  end;
  if Array.length t.idents.(n) <> n then
    t.idents.(n) <- Array.init n (fun i -> i);
  t.idents.(n)

let trace t = t.trace

let warp_id t = t.warp_id

let tids t = t.lanes

let n_active t = Array.length t.lanes

let check_width t a label =
  if Array.length a <> n_active t then
    invalid_arg ("Warp_ctx." ^ label ^ ": per-lane array width mismatch")

let san_access_of_label label =
  match label with
  | Label.Vtable_load -> Repro_san.Checker.Vtable
  | Label.Vfunc_load -> Repro_san.Checker.Vfunc
  | _ -> Repro_san.Checker.Other

let sanitize t ~label ~width addrs =
  match t.san with
  | None -> ()
  | Some san ->
    Repro_san.Checker.check_access san ~warp:t.warp_id ~tids:t.lanes
      ~access:(san_access_of_label label) ~what:(Label.slug label) ~width
      ~addrs

(* Tag stripping is fused into arena emission ([Trace.emit_mem]); the
   functional access reads the canonical addresses back from the arena
   slice just written, so no intermediate stripped array is built. *)
let do_load t ~width ~blocking ~label addrs =
  check_width t addrs "load";
  sanitize t ~label ~width addrs;
  let off = Trace.emit_load t.trace ~label ~blocking addrs in
  let arena = Trace.arena t.trace in
  Array.init (Array.length addrs) (fun i ->
      Page_store.load_byte_width t.heap arena.(off + i) ~width)

let load ?(width = 8) t ~label addrs = do_load t ~width ~blocking:true ~label addrs

let load_nonblocking ?(width = 8) t ~label addrs =
  do_load t ~width ~blocking:false ~label addrs

(* Scratch-buffer entry points for the interned emission engine: the
   caller (the object model's fused field path) computes canonical
   per-lane addresses into a reusable buffer that may be wider than the
   warp, so only the returned value array is allocated. The sanitizer
   needs an exact-width array; that copy only happens on sanitized runs,
   which take the legacy path anyway. *)
let sanitize_buf t ~label ~width addrs n =
  match t.san with
  | None -> ()
  | Some _ -> sanitize t ~label ~width (Array.sub addrs 0 n)

let load_into ?(width = 8) t ~label ~blocking ~addrs ~n =
  if n <> n_active t then
    invalid_arg "Warp_ctx.load_into: per-lane buffer width mismatch";
  sanitize_buf t ~label ~width addrs n;
  let off = Trace.emit_load_n t.trace ~label ~blocking addrs n in
  let arena = Trace.arena t.trace in
  let out = Array.make n 0 in
  Page_store.load_batch t.heap arena ~off ~n ~width out;
  out

let store_from ?(width = 8) t ~label ~addrs ~n values =
  if n <> n_active t || Array.length values <> n then
    invalid_arg "Warp_ctx.store_from: per-lane buffer width mismatch";
  sanitize_buf t ~label ~width addrs n;
  let off = Trace.emit_store_n t.trace ~label addrs n in
  let arena = Trace.arena t.trace in
  Page_store.store_batch t.heap arena ~off ~n ~width values

let store ?(width = 8) t ~label addrs values =
  check_width t addrs "store";
  check_width t values "store";
  sanitize t ~label ~width addrs;
  let off = Trace.emit_store t.trace ~label addrs in
  let arena = Trace.arena t.trace in
  Array.iteri
    (fun i v -> Page_store.store_byte_width t.heap arena.(off + i) ~width v)
    values

let compute ?(n = 1) ?(blocking = false) t ~label =
  Trace.emit_compute t.trace ~label ~n ~blocking ~active:(n_active t)

let ctrl ?(n = 1) t ~label = Trace.emit_ctrl t.trace ~label ~n ~active:(n_active t)

let const_load t ~label =
  Trace.emit_const_load t.trace ~label ~active:(n_active t)

let call_indirect t ~label =
  Trace.emit_call_indirect t.trace ~label ~active:(n_active t)

let call_direct t ~label =
  Trace.emit_call_direct t.trace ~label ~active:(n_active t)

let gather idxs a = Array.map (fun i -> a.(i)) idxs

let scatter idxs dst src = Array.iteri (fun k i -> dst.(i) <- src.(k)) idxs

(* Distinct keys in first-occurrence order, with the member indices of each
   group. Warps are at most 32 lanes wide so association lists are fine. *)
let group_by_key keys =
  let groups = ref [] in
  Array.iteri
    (fun i key ->
      match List.assoc_opt key !groups with
      | Some members -> members := i :: !members
      | None -> groups := (key, ref [ i ]) :: !groups)
    keys;
  List.rev_map (fun (key, members) -> (key, List.rev !members)) !groups

(* Fused divergence: the same groups in the same first-occurrence order
   with the same member order as [group_by_key], built with array scans
   instead of association lists. The warp-uniform case — the common one
   at converged call sites — emits on [t] itself with a cached identity
   index map, allocating nothing. Emission order and active counts are
   identical to the legacy path, so traces (and therefore timing) are
   byte-identical. *)
let diverge_fused t ~label ~keys body =
  let n = Array.length keys in
  let k0 = keys.(0) in
  let uniform = ref true in
  let i = ref 1 in
  while !uniform && !i < n do
    if keys.(!i) <> k0 then uniform := false;
    incr i
  done;
  if !uniform then begin
    ctrl t ~label;
    body ~key:k0 t (identity t n)
  end
  else begin
    (* Distinct keys in first-occurrence order. Fresh (not scratch):
       [gk] stays live across body calls, and bodies may diverge again. *)
    let gk = Array.make n 0 in
    let ng = ref 0 in
    for i = 0 to n - 1 do
      let k = keys.(i) in
      let seen = ref false in
      for g = 0 to !ng - 1 do
        if gk.(g) = k then seen := true
      done;
      if not !seen then begin
        gk.(!ng) <- k;
        incr ng
      end
    done;
    for g = 0 to !ng - 1 do
      let k = gk.(g) in
      let m = ref 0 in
      for i = 0 to n - 1 do
        if keys.(i) = k then incr m
      done;
      let idxs = Array.make !m 0 in
      let j = ref 0 in
      for i = 0 to n - 1 do
        if keys.(i) = k then begin
          idxs.(!j) <- i;
          incr j
        end
      done;
      let sub = { t with lanes = gather idxs t.lanes } in
      ctrl sub ~label;
      body ~key:k sub idxs
    done
  end

let diverge t ~label ~keys body =
  check_width t keys "diverge";
  if t.fused then diverge_fused t ~label ~keys body
  else
    let groups = group_by_key keys in
    (* One control instruction decides the branch; each extra executed
       subset costs a reconvergence-stack push, also modelled as a
       control op. *)
    List.iter
      (fun (key, members) ->
        let idxs = Array.of_list members in
        let sub = { t with lanes = gather idxs t.lanes } in
        ctrl sub ~label;
        body ~key sub idxs)
      groups

let if_ t ~label ~pred then_ else_ =
  let body ~key sub idxs =
    if key = 1 then then_ sub idxs
    else match else_ with Some f -> f sub idxs | None -> ()
  in
  if t.fused then begin
    if Array.length pred <> n_active t then
      invalid_arg "Warp_ctx.if_: per-lane array width mismatch";
    let n = Array.length pred in
    let keys = Array.make n 0 in
    for i = 0 to n - 1 do
      if pred.(i) then keys.(i) <- 1
    done;
    diverge_fused t ~label ~keys body
  end
  else begin
    check_width t (Array.map (fun b -> if b then 1 else 0) pred) "if_";
    let keys = Array.map (fun b -> if b then 1 else 0) pred in
    diverge t ~label ~keys body
  end
