type t =
  | Vtable_load
  | Vfunc_load
  | Const_indirect
  | Call
  | Coal_lookup
  | Tp_dispatch
  | Tp_strip
  | Concord_tag
  | Concord_switch
  | Body

let all =
  [ Vtable_load; Vfunc_load; Const_indirect; Call; Coal_lookup; Tp_dispatch;
    Tp_strip; Concord_tag; Concord_switch; Body ]

let count = List.length all

let to_index = function
  | Vtable_load -> 0
  | Vfunc_load -> 1
  | Const_indirect -> 2
  | Call -> 3
  | Coal_lookup -> 4
  | Tp_dispatch -> 5
  | Tp_strip -> 6
  | Concord_tag -> 7
  | Concord_switch -> 8
  | Body -> 9

let of_index i =
  match List.nth_opt all i with
  | Some l -> l
  | None -> invalid_arg "Label.of_index: out of range"

let slug = function
  | Vtable_load -> "vtable_load"
  | Vfunc_load -> "vfunc_load"
  | Const_indirect -> "const_indirect"
  | Call -> "call"
  | Coal_lookup -> "coal_lookup"
  | Tp_dispatch -> "tp_dispatch"
  | Tp_strip -> "tp_strip"
  | Concord_tag -> "concord_tag"
  | Concord_switch -> "concord_switch"
  | Body -> "body"

let name = function
  | Vtable_load -> "load vTable*"
  | Vfunc_load -> "load vFunc*"
  | Const_indirect -> "const indirection"
  | Call -> "call"
  | Coal_lookup -> "COAL lookup"
  | Tp_dispatch -> "TypePointer dispatch"
  | Tp_strip -> "TypePointer strip"
  | Concord_tag -> "Concord tag load"
  | Concord_switch -> "Concord switch"
  | Body -> "body"

let pp ppf t = Format.pp_print_string ppf (name t)
