(** Machine description for the simulated GPU.

    The default is a scaled-down NVIDIA V100: the per-SM resources (warp
    size, residency, issue width, L1) match Volta, while the SM count and
    the L2 are shrunk in proportion to the scaled-down workloads so that
    the working-set-to-cache ratios — the property the paper's results
    hinge on — are preserved. Latencies are in core cycles; throughputs in
    units per cycle. *)

type t = {
  warp_size : int;              (** Lanes per warp (32). *)
  n_sms : int;                  (** Streaming multiprocessors. *)
  max_warps_per_sm : int;       (** Resident-warp limit (occupancy). *)
  issue_width : int;            (** Warp instructions issued per SM cycle. *)
  compute_latency : int;        (** ALU dependency latency. *)
  ctrl_latency : int;           (** Branch/SIMT-stack latency. *)
  const_latency : int;          (** Constant-cache hit latency. *)
  call_indirect_latency : int;  (** Extra latency of an indirect branch. *)
  call_direct_latency : int;
  l1_geometry : Cache.geometry; (** Per-SM L1 (flushed at kernel launch). *)
  l1_latency : int;
  l1_sector_throughput : float; (** Sectors serviced per cycle per SM. *)
  lsu_throughput : float;       (** Warp mem instructions accepted/cycle/SM. *)
  l2_geometry : Cache.geometry; (** Device-wide L2. *)
  l2_latency : int;
  l2_sector_throughput : float; (** Sectors per cycle, whole device. *)
  dram_latency : int;
  dram_sector_throughput : float; (** Sectors per cycle, whole device. *)
}

val default : t
(** The scaled V100 described above. *)

val v100_like : t
(** A fuller-size configuration (80 SMs, 6 MB L2) for users who run
    paper-scale object counts; slower to simulate. *)

val validate : t -> unit
(** Raises [Invalid_argument] when a field is non-positive or the warp
    size is not a multiple of the sector/word ratio assumptions. *)

val slice : t -> t
(** The per-SM shard of this machine used by intra-launch sharded timing
    ({!Engine.t}[.intra]): [n_sms = 1], the same L1, a private
    [1/n_sms] slice of the L2 (set count rounded down to a power of two)
    and [1/n_sms] of the L2/DRAM sector bandwidth. [slice t = t] when
    [t.n_sms = 1]. *)

val pp : Format.formatter -> t -> unit
