(** Flat binary min-heap for the replay event loop.

    Same ordering contract as [Repro_util.Heap] — pop order is
    lexicographic in (key, insertion sequence), so equal-key entries come
    out FIFO — but monomorphized to float keys and int payloads stored in
    bare arrays. Keys cross the API through the {!key_cell} mailbox (a
    one-element float array) rather than as boxed arguments/results, so a
    push/pop cycle performs no allocation; only capacity growth allocates,
    and capacity is bounded by the peak number of queued entries (resident
    warps), not by trace length. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val is_empty : t -> bool

val clear : t -> unit
(** Empty the heap and restart the insertion sequence. *)

val key_cell : t -> float array
(** The key mailbox: write [key_cell.(0)] before {!push}; {!pop} writes the
    popped entry's key there. *)

val push : t -> int -> unit
(** [push t v] inserts payload [v] with key [key_cell t].(0). *)

val pop : t -> int
(** Remove the minimum-(key, seq) entry: returns its payload and stores its
    key in [key_cell t].(0). Returns [-1] when empty (payloads are warp
    indices, always non-negative). *)
