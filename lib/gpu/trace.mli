(** Per-warp dynamic instruction traces (phase-1 output, phase-2 input).

    Stored as a structure of arrays: one flat int array per field (opcode,
    label id, active lanes, repeat count, blocking flag, arena offset) plus
    a per-trace address arena holding the canonical per-lane byte addresses
    of every memory instruction back to back. The functional phase appends
    through the [emit_*] functions (amortized-doubling growth, tag bits
    stripped as addresses enter the arena); the timing phase replays by
    index through the int-returning accessors without touching the minor
    heap.

    {!get}/{!iter} provide a compatibility view that materializes boxed
    {!Instr.t} records for consumers that want pattern matching
    ([Instr.class_of]-style inspection, tests); they allocate and are not
    for the replay path. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int
(** Number of trace records (one [Compute n] record counts once here). *)

val instruction_total : t -> int
(** Total dynamic warp instructions (expanding [Compute n]/[Ctrl n]).
    Maintained incrementally; O(1). *)

(** {1 Opcodes}

    The values stored in the opcode array and returned by {!op}. *)

val op_load : int
val op_store : int
val op_compute : int
val op_ctrl : int
val op_const_load : int
val op_call_indirect : int
val op_call_direct : int

(** {1 Emission (functional phase)} *)

val emit_load : t -> label:Label.t -> blocking:bool -> int array -> int
(** [emit_load t ~label ~blocking addrs] records one global-load
    instruction, stripping each address's tag bits as it is copied into the
    arena, and returns the arena offset of the first lane ([Array.length
    addrs] consecutive entries). Raises [Invalid_argument] on an empty
    lane set. *)

val emit_store : t -> label:Label.t -> int array -> int
(** Same for a (non-blocking) global store. *)

val emit_compute : t -> label:Label.t -> n:int -> blocking:bool -> active:int -> unit

val emit_ctrl : t -> label:Label.t -> n:int -> active:int -> unit

val emit_const_load : t -> label:Label.t -> active:int -> unit

val emit_call_indirect : t -> label:Label.t -> active:int -> unit

val emit_call_direct : t -> label:Label.t -> active:int -> unit

(** {1 Replay accessors (timing phase)}

    All return immediates; none allocate. *)

val op : t -> int -> int

val label_index : t -> int -> int
(** The record's {!Label.to_index}. *)

val active : t -> int -> int
(** Active lane count; for memory records this is also the arena slice
    length. *)

val repeat : t -> int -> int
(** The record's {!Instr.instruction_count}. *)

val is_blocking : t -> int -> bool

val addr_off : t -> int -> int
(** Arena offset of a memory record's addresses; -1 for non-memory
    records. *)

val arena : t -> int array
(** The current address arena. Emission may replace the array (growth), so
    re-fetch after any [emit_*]; during replay the trace is frozen and the
    array is stable. *)

(** {1 Compatibility view} *)

val emit : t -> Instr.t -> unit
(** Decompose a boxed instruction into the SoA arrays (legacy emission;
    load/store payloads are canonicalized like {!emit_load}). *)

val get : t -> int -> Instr.t
(** Materialize record [i] as a boxed {!Instr.t} (allocates; memory
    payloads are fresh copies of the arena slice). *)

val iter : (Instr.t -> unit) -> t -> unit
(** Materializing iteration over {!get}. *)
