(** Per-warp dynamic instruction traces (phase-1 output, phase-2 input).

    Stored as a structure of arrays: one flat int array per field (opcode,
    label id, active lanes, repeat count, blocking flag, arena offset) plus
    a per-trace address arena holding the canonical per-lane byte addresses
    of every memory instruction back to back. The functional phase appends
    through the [emit_*] functions (amortized-doubling growth, tag bits
    stripped as addresses enter the arena); the timing phase replays by
    index through the int-returning accessors without touching the minor
    heap.

    {!get}/{!iter} provide a compatibility view that materializes boxed
    {!Instr.t} records for consumers that want pattern matching
    ([Instr.class_of]-style inspection, tests); they allocate and are not
    for the replay path. *)

type t

val create : ?capacity:int -> unit -> t

val reset : t -> unit
(** Rewind to empty, keeping capacity. The interned emission engine
    replays one scratch trace per device: [reset] between warps, then
    {!Intern.seal} to snapshot the stream. *)

val length : t -> int
(** Number of trace records (one [Compute n] record counts once here). *)

val instruction_total : t -> int
(** Total dynamic warp instructions (expanding [Compute n]/[Ctrl n]).
    Maintained incrementally; O(1). *)

(** {1 Opcodes}

    The values stored in the opcode array and returned by {!op}. *)

val op_load : int
val op_store : int
val op_compute : int
val op_ctrl : int
val op_const_load : int
val op_call_indirect : int
val op_call_direct : int

(** {1 Emission (functional phase)} *)

val emit_load : t -> label:Label.t -> blocking:bool -> int array -> int
(** [emit_load t ~label ~blocking addrs] records one global-load
    instruction, stripping each address's tag bits as it is copied into the
    arena, and returns the arena offset of the first lane ([Array.length
    addrs] consecutive entries). Raises [Invalid_argument] on an empty
    lane set. *)

val emit_load_n : t -> label:Label.t -> blocking:bool -> int array -> int -> int
(** [emit_load_n t ~label ~blocking buf n] is {!emit_load} over
    [buf.(0 .. n-1)] — the scratch-buffer form used by the fused emission
    fast path, where [buf] may be wider than the warp. *)

val emit_store : t -> label:Label.t -> int array -> int
(** Same for a (non-blocking) global store. *)

val emit_store_n : t -> label:Label.t -> int array -> int -> int
(** Scratch-buffer form of {!emit_store}. *)

val emit_compute : t -> label:Label.t -> n:int -> blocking:bool -> active:int -> unit

val emit_ctrl : t -> label:Label.t -> n:int -> active:int -> unit

val emit_const_load : t -> label:Label.t -> active:int -> unit

val emit_call_indirect : t -> label:Label.t -> active:int -> unit

val emit_call_direct : t -> label:Label.t -> active:int -> unit

(** {1 Replay accessors (timing phase)}

    All return immediates; none allocate. *)

val op : t -> int -> int

val label_index : t -> int -> int
(** The record's {!Label.to_index}. *)

val active : t -> int -> int
(** Active lane count; for memory records this is also the arena slice
    length. *)

val repeat : t -> int -> int
(** The record's {!Instr.instruction_count}. *)

val is_blocking : t -> int -> bool

val addr_off : t -> int -> int
(** Arena offset of a memory record's addresses; -1 for non-memory
    records. *)

val arena : t -> int array
(** The current address arena. Emission may replace the array (growth), so
    re-fetch after any [emit_*]; during replay the trace is frozen and the
    array is stable. *)

(** {1 Compatibility view} *)

val emit : t -> Instr.t -> unit
(** Decompose a boxed instruction into the SoA arrays (legacy emission;
    load/store payloads are canonicalized like {!emit_load}). *)

val get : t -> int -> Instr.t
(** Materialize record [i] as a boxed {!Instr.t} (allocates; memory
    payloads are fresh copies of the arena slice). *)

val iter : (Instr.t -> unit) -> t -> unit
(** Materializing iteration over {!get}. *)

(** {1 Interning}

    Hash-consing of warp instruction streams. The paper's workloads are
    homogeneous per type, so a launch's traces collapse to a handful of
    distinct record-column sets; sealing a warp's scratch trace through a
    pool shares the column arrays (op/label/active/repeat/blocking/offset)
    of every warp with an identical stream. Per-lane addresses are {e
    never} shared — they differ per warp and drive coalescing, cache and
    TLB state — so each sealed trace keeps a private exact-size arena.
    Replay through a sealed trace is structurally identical to replay
    through a plain one: timing and stats are byte-identical. *)
module Intern : sig
  type pool

  val create : unit -> pool
  (** An empty pool; typically one per kernel launch. *)

  val seal : pool -> t -> t
  (** [seal pool scratch] snapshots [scratch] into a frozen trace:
      columns are hash-consed through [pool] (shared physically with any
      earlier identical stream), the arena is copied exact-size. The
      scratch is not modified — {!reset} it before the next warp. *)

  val sealed : pool -> int
  (** Streams sealed through the pool. *)

  val unique : pool -> int
  (** Distinct streams the pool holds; [sealed / unique] is the launch's
      dedup ratio. *)

  val sealed_instrs : pool -> int
  (** Dynamic warp instructions across all sealed streams. *)

  val unique_instrs : pool -> int
  (** Ditto across distinct streams only. *)
end

val shares_columns : t -> t -> bool
(** Physical column-array sharing (interning worked) — test hook. *)

val arena_length : t -> int
(** Live prefix of {!arena}. *)

(** Column views for the fused replay loop ({!Sm.run_fused}): hoisted
    once per launch so per-instruction reads are direct array loads (no
    flambda, so the per-record accessors above are real calls). Only the
    first {!length} entries are live; never mutate through these. *)
module Raw : sig
  val op_col : t -> int array
  val lbl_col : t -> int array
  val act_col : t -> int array
  val rep_col : t -> int array
  val blk_col : t -> int array
  val aoff_col : t -> int array
end
