(** Instruction labels.

    Every emitted warp instruction carries a label identifying which part
    of the virtual-call machinery (or of the workload body) it belongs to.
    The timing model attributes stall cycles to labels, which is how we
    reproduce the paper's Figure 1b PC-sampling breakdown (load vTable*,
    load vFunc*, indirect call). *)

type t =
  | Vtable_load     (** A in Fig. 1a: the per-object vTable pointer load. *)
  | Vfunc_load      (** B in Fig. 1a: the vFunc pointer load from the vTable. *)
  | Const_indirect  (** The per-kernel constant-memory indirection (Sec. 2). *)
  | Call            (** C in Fig. 1a: the indirect (or direct) call. *)
  | Coal_lookup     (** COAL's virtual-range-table walk (Algorithm 1). *)
  | Tp_dispatch     (** TypePointer's SHR/ADD/LDG sequence (Fig. 5b). *)
  | Tp_strip        (** Prototype-mode mask instructions at member refs. *)
  | Concord_tag     (** Concord's embedded type-tag load. *)
  | Concord_switch  (** Concord's compare/branch switch expansion. *)
  | Body            (** Workload code outside the dispatch machinery. *)

val count : int
(** Number of distinct labels; labels index dense arrays. *)

val to_index : t -> int

val of_index : int -> t
(** Raises [Invalid_argument] out of range. *)

val name : t -> string
(** Display name, as the paper spells it (may contain spaces and [*]). *)

val slug : t -> string
(** Stable machine-readable identifier ([vtable_load], [coal_lookup], ...)
    used in metric names and JSON/CSV exports. *)

val all : t list

val pp : Format.formatter -> t -> unit
