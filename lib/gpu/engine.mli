(** Simulation-engine configuration.

    Two independent switches over the two phases of a run, plus one
    runtime knob:

    - [intern] — the interned emission engine (phase 1): per-warp
      instruction streams are emitted into a reusable scratch trace and
      hash-consed per launch ({!Trace.Intern}), and the object model's
      field access path fuses address generation, emission and the heap
      read into allocation-free loops. Storage and speed only: the
      emitted traces are structurally identical to the legacy path's, so
      replay timing and stats are byte-identical. On by default;
      [intern = false] is the legacy engine kept as the measurable
      baseline (and for memory-behaviour A/B runs).

    - [intra] — intra-launch sharded timing (phase 2): each SM replays
      independently against a private slice of the memory system
      (1/n_sms of the L2 and of the L2/DRAM bandwidth; see
      {!Config.slice}) and the per-SM stats are merged in SM order.
      Deterministic by construction and independent of [intra_jobs], but
      a {e different timing model} from the shared-L2 sequential engine
      (sharding an LRU cache and a global bandwidth clock exactly would
      reintroduce the cross-SM ordering the parallelism removes), so it
      is off by default and recorded in job keys and wire specs.

    - [intra_jobs] — how many domains replay the shards; [<= 0] means
      [Repro_util.Pool.available_workers ()]. Never affects results. *)

type t = {
  intern : bool;      (** interned emission engine (default [true]) *)
  intra : bool;       (** sliced intra-launch parallel timing (default [false]) *)
  intra_jobs : int;   (** domains for [intra]; [<= 0] = auto. Results-neutral. *)
}

val default : t

val legacy : t
(** [default] with [intern = false]: the pre-interning engine. *)

val resolve_jobs : t -> int
(** [intra_jobs] with the auto default applied. *)
