(** Cycle-resolved telemetry: windowed counter sampling and the event
    ring behind the Chrome-trace exporter.

    Both features are opt-in and sized up front so the replay loop keeps
    its allocation discipline:

    - The {!Sampler} slices a launch into fixed windows of N cycles.
      Each window owns a fresh {!Stats.t} row that the engine counts
      into directly, so folding the rows with [Stats.add] in order
      reproduces the launch totals bit-for-bit (the same association of
      additions the device performs) — no delta subtraction, no float
      drift. Rows are recycled across launches until {!Sampler.take}
      detaches them; enabling sampling costs one row per window, never
      an allocation per instruction.

    - The {!Ring} is a pre-sized structure-of-arrays buffer of typed
      events (warp stall intervals by {!Label}, cache and DRAM
      transactions, all with absolute timestamps). The engine writes
      fields directly — int and float-array stores only, so recording
      never boxes or allocates — and when the ring is full it drops the
      oldest event and counts it (surfaced as the [trace.dropped]
      metric). [Repro_obs.Tracer] renders a {!dump} of it as Chrome
      trace-event JSON.

    This module is deliberately engine-agnostic: [Sm]/[Mem_path]/
    [Device] hold the hooks; nothing here calls back into them. *)

type config = {
  window : int option;
  (** Sampling window in cycles; [None] disables windowed sampling. *)
  trace : bool;  (** Record events into the ring. *)
  trace_capacity : int;
  (** Ring size in events (allocated once at configure time). *)
}

val default_window : int
(** 1024 cycles — fine enough to see warm-up and wave boundaries at the
    default scale, coarse enough that a run stays at tens of windows. *)

val default_capacity : int
(** 65536 events (six flat arrays; about 3 MB). *)

val off : config

val config_enabled : config -> bool
(** Whether the configuration turns anything on. *)

module Sampler : sig
  type t

  val create : window:int -> t
  (** Raises [Invalid_argument] when [window <= 0]. *)

  val window : t -> int

  val boundary_cell : t -> float array
  (** One-slot mailbox holding the current window's end time. The replay
      loop compares each event time against [cell.(0)] inline (a float
      array read never boxes) and calls {!advance} only on the rare
      crossing. *)

  val begin_launch : t -> unit
  (** Rewind to window 0 of a new launch (launches are timed from 0). *)

  val advance : t -> now:float -> unit
  (** Seal windows until [now] falls inside the current one (empty
      windows get zero rows), starting a fresh row for each. Cold path:
      called at most once per window boundary. *)

  val current : t -> Stats.t
  (** The open window's row; counting calls target it directly.
      Re-fetch after every {!advance}. *)

  val finish_launch : t -> cycles:float -> unit
  (** Assign each row its duration: every sealed window gets the full
      window length, the open one gets the remainder. The assignments
      are constructed so that summing the rows' [cycles] in order
      reproduces [cycles] exactly (see the exactness note in
      [timeline.mli]). *)

  val rows : t -> int
  (** Rows in use for the current launch (>= 1 after {!begin_launch}). *)

  val take : t -> Stats.t array
  (** Detach the launch's rows, in window order, replacing them with
      fresh zero rows. Call after {!finish_launch}. *)
end

module Ring : sig
  (** Event kinds; [arg_a]/[arg_b] meaning depends on the kind. *)

  val kind_stall : int
  (** A warp stall interval: [track] = SM, [arg_a] = label index,
      [arg_b] = warp id; [dur] = attributed stall cycles. *)

  val kind_l1 : int
  (** One L1 sector access: [track] = SM, [arg_a] = 1 on hit else 0,
      [arg_b] = sector. *)

  val kind_l2 : int
  (** One L2 sector access: [arg_a] bit 0 = hit, bit 1 = store,
      [arg_b] = sector. *)

  val kind_dram : int
  (** A DRAM transaction: [arg_a] = sectors consumed (2 for a load's
      64 B pair fill, 1 for a write-through store miss), [arg_b] =
      sector. *)

  val kind_tlb : int
  (** A TLB page-walk interval: [track] = SM, [arg_a] = radix levels
      walked, [arg_b] = sector; [dur] = walk cycles charged. TLB hits
      are not recorded (they are counted in [Stats]). *)

  (** The fields are public because the replay loop writes them in
      place: a [record] function taking [ts]/[dur] as arguments would
      box two floats per event. Writers fill the six arrays at index
      [head], then call {!bump}. *)
  type t = {
    cap : int;
    kind : int array;
    track : int array;
    arg_a : int array;
    arg_b : int array;
    ts : float array;   (** Absolute cycles (launch base already added). *)
    dur : float array;
    cells : float array;
    (** [cells.(0)]: the running launch's base time, added to every
        timestamp so multi-launch traces form one timeline;
        [cells.(1)]: max event end time seen since [begin_launch]
        (bounds the kernel span even when store drain outlives the
        last warp). *)
    mutable head : int;      (** Next write index. *)
    mutable len : int;
    mutable dropped : int;   (** Since the last {!take_dropped}. *)
    mutable all_dropped : int;
  }

  val create : capacity:int -> t
  (** Raises [Invalid_argument] when [capacity <= 0]. *)

  val begin_launch : t -> base:float -> unit
  (** Set the launch's base time and reset the max-end watermark. *)

  val bump : t -> unit
  (** Commit the event just written at [head]: advance [head], and
      either grow [len] or count a drop (the oldest event was
      overwritten — drop-oldest spill policy). *)

  val record :
    t -> kind:int -> track:int -> a:int -> b:int -> ts:float -> dur:float ->
    unit
  (** Convenience writer for cold paths and tests ([ts] is
      launch-relative; the base is added). The replay loop inlines the
      stores instead. *)

  val length : t -> int

  val take_dropped : t -> int
  (** Drops since the last call (folded into the launch's
      [trace.dropped] counter), resetting the tally. *)

  val all_dropped : t -> int
  (** Total drops since creation or {!clear}. *)

  val max_end : t -> float

  val clear : t -> unit

  val to_events : t -> (int * int * int * int * float * float) array
  (** Buffered events oldest-first as [(kind, track, a, b, ts, dur)]. *)
end

type t = {
  config : config;
  sampler : Sampler.t option;
  ring : Ring.t option;
}

val create : config -> t

(** {2 Dump} — the detached, render-ready view [Repro_obs.Tracer]
    consumes. *)

type event = {
  kind : int;
  track : int;
  arg_a : int;
  arg_b : int;
  ts : float;
  dur : float;
}

type kernel_span = {
  index : int;   (** Launch index. *)
  start : float; (** Absolute start cycle (cumulative over launches). *)
  dur : float;
  (** At least the launch's cycles; extended to cover trailing
      write-through DRAM drain recorded past the last warp's retirement. *)
}

type dump = {
  n_sms : int;
  window : int;  (** Sampling window in cycles; 0 when sampling was off. *)
  events : event array;  (** Oldest first. *)
  kernels : kernel_span list;  (** In launch order. *)
  dropped : int;  (** Events lost to the drop-oldest policy. *)
}

val events_of_ring : Ring.t -> event array
