(** The whole simulated GPU: launch kernels, accumulate statistics.

    A launch proceeds in two phases. Phase 1 (functional) partitions the
    grid into warps and runs the kernel body once per warp through
    {!Warp_ctx}, mutating the simulated heap and recording instruction
    traces — values never depend on timing, so traces are exact. Phase 2
    ({!Sm.run}) replays the traces through the timing model. Kernels must
    be data-race-free across warps within a launch (the usual CUDA
    contract); phase 1 executes warps in grid order. *)

type t

val create :
  ?config:Config.t -> ?engine:Engine.t -> ?san:Repro_san.Checker.t ->
  ?telemetry:Telemetry.config ->
  heap:Repro_mem.Page_store.t -> unit -> t
(** When [san] is given, every launch threads it through the warp
    contexts and folds the checker's per-launch violation delta into that
    launch's counters (so the timeline invariant below still holds).

    [engine] selects the simulation engine (default {!Engine.default}:
    interned emission on, sharded timing off). With [engine.intern],
    phase 1 emits every warp through one reusable scratch trace and
    hash-conses identical instruction streams per launch — stats stay
    byte-identical. With [engine.intra], phase 2 replays each SM against
    a private memory-system slice over the Domain pool (deterministic,
    [jobs]-independent, but a documented model deviation); launches with
    telemetry or an attached translation model fall back to the
    sequential loop.

    [telemetry] opts into cycle-resolved instrumentation, allocated once
    here: windowed counter sampling ({!window_timeline}) and/or the
    event ring behind {!telemetry_dump}. A disabled config (the
    default, or {!Telemetry.off}) leaves the replay path untouched. *)

val config : t -> Config.t

val engine : t -> Engine.t

val interning_tallies : t -> int * int * int * int
(** [(sealed, unique, sealed_instrs, unique_instrs)] — warp instruction
    streams sealed through the interning pools since the last
    {!reset_stats}, how many were distinct, and the dynamic warp
    instructions behind each. All zero when the legacy engine is
    selected (or nothing launched). *)

val dedup_ratio : t -> float
(** [sealed /. unique] streams ([1.] before any interned launch) — the
    interning compression factor. *)

val heap : t -> Repro_mem.Page_store.t

val set_vm : t -> Repro_vm.Vm.t option -> unit
(** Attach (or detach) an address-translation model; see
    [Mem_path.set_vm]. The runtime rebuilds and re-attaches the model
    when the heap layout changes between launches. *)

val vm : t -> Repro_vm.Vm.t option

val launch : t -> n_threads:int -> (Warp_ctx.t -> unit) -> unit
(** Run a kernel over a 1-D grid of [n_threads] threads (the last warp may
    be partial). Raises [Invalid_argument] when [n_threads <= 0]. *)

val stats : t -> Stats.t
(** Counters accumulated since creation or the last {!reset_stats},
    including total cycles across launches. *)

val kernel_timeline : t -> Stats.t list
(** One counter snapshot per kernel launch since creation or the last
    {!reset_stats}, in launch order — the simulator analogue of an NVProf
    timeline. Each entry holds only that launch's contribution (its
    [cycles] is the launch duration); accumulating the entries in order
    reproduces {!stats} exactly, float counters included. *)

val window_timeline : t -> Stats.t array list
(** When windowed sampling is on: one array of per-window counter rows
    per launch (in launch order; windows in time order). Folding a
    launch's rows with [Stats.add] reproduces that launch's
    {!kernel_timeline} delta exactly — float counters included — and the
    rows' [cycles] sum to the launch duration bit-for-bit. Empty unless
    the device was created with a sampling [telemetry] config. *)

val sample_window : t -> int option
(** The sampling window in cycles, when windowed sampling is on. *)

val telemetry_dump : t -> Telemetry.dump option
(** Snapshot of the event ring (plus per-launch kernel spans on the
    cumulative time axis), when tracing is on. Rendered to Chrome
    trace-event JSON by [Repro_obs.Tracer]. *)

val reset_stats : t -> unit
(** Also resets the persistent L2 tag state, so timed regions start
    cold and runs are order-independent. Clears the kernel timeline,
    the window timeline and the event ring. *)

val launches : t -> int
(** Number of kernel launches since the last reset. *)

val retain_traces : t -> bool -> unit
(** When enabled, every subsequent launch's per-warp traces are kept (in
    launch order) for offline replay — the hook [bench/sim_bench.exe]
    uses to re-time real workload traces without re-running the
    functional phase. Disabling drops anything retained. Off by
    default; retention costs memory proportional to the traces. *)

val retained_traces : t -> Trace.t array list
(** Retained launches in launch order (empty unless {!retain_traces} is
    on). Cleared by {!reset_stats}. *)
