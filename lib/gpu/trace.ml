(* Structure-of-arrays trace storage.

   One record per dynamic warp instruction, split across flat parallel int
   arrays; memory instructions keep their per-lane canonical addresses in a
   shared arena ([addrs]) addressed by offset/length. The functional phase
   grows the arrays (amortized doubling); the timing phase replays by index
   without allocating. *)

let op_load = 0
let op_store = 1
let op_compute = 2
let op_ctrl = 3
let op_const_load = 4
let op_call_indirect = 5
let op_call_direct = 6

type t = {
  mutable len : int;
  mutable op : int array;        (* op_* opcode *)
  mutable lbl : int array;       (* Label.to_index *)
  mutable act : int array;       (* active lanes when issued *)
  mutable rep : int array;       (* Instr.instruction_count *)
  mutable blk : int array;       (* blocking flag, 0/1 *)
  mutable aoff : int array;      (* arena offset; -1 for non-mem records *)
  mutable addrs : int array;     (* the address arena *)
  mutable addrs_len : int;
  mutable instr_total : int;     (* running sum of [rep] *)
}

let create ?(capacity = 64) () =
  let capacity = max 1 capacity in
  {
    len = 0;
    op = Array.make capacity 0;
    lbl = Array.make capacity 0;
    act = Array.make capacity 0;
    rep = Array.make capacity 0;
    blk = Array.make capacity 0;
    aoff = Array.make capacity (-1);
    addrs = Array.make (4 * capacity) 0;
    addrs_len = 0;
    instr_total = 0;
  }

(* Rewind for scratch reuse: the capacity (and any growth) survives, so a
   per-device scratch trace reaches steady state after the largest warp
   and emission stops allocating entirely. *)
let reset t =
  t.len <- 0;
  t.addrs_len <- 0;
  t.instr_total <- 0

let length t = t.len

let instruction_total t = t.instr_total

let grow_records t =
  let cap = 2 * Array.length t.op in
  let extend a fill =
    let fresh = Array.make cap fill in
    Array.blit a 0 fresh 0 t.len;
    fresh
  in
  t.op <- extend t.op 0;
  t.lbl <- extend t.lbl 0;
  t.act <- extend t.act 0;
  t.rep <- extend t.rep 0;
  t.blk <- extend t.blk 0;
  t.aoff <- extend t.aoff (-1)

let reserve_arena t n =
  let cap = Array.length t.addrs in
  if t.addrs_len + n > cap then begin
    let fresh = Array.make (max (2 * cap) (t.addrs_len + n)) 0 in
    Array.blit t.addrs 0 fresh 0 t.addrs_len;
    t.addrs <- fresh
  end

let push t ~op ~label ~active ~rep ~blocking ~aoff =
  if t.len >= Array.length t.op then grow_records t;
  let i = t.len in
  t.op.(i) <- op;
  t.lbl.(i) <- Label.to_index label;
  t.act.(i) <- active;
  t.rep.(i) <- rep;
  t.blk.(i) <- (if blocking then 1 else 0);
  t.aoff.(i) <- aoff;
  t.len <- i + 1;
  t.instr_total <- t.instr_total + rep

(* Memory emission strips TypePointer tag bits as the addresses land in the
   arena — the hardware-MMU view, fused with trace recording so no
   intermediate canonical array is built. The [_n] variants take an
   explicit lane count so callers can emit straight from a reusable
   scratch buffer wider than the warp. *)
let emit_mem_n t ~op ~label ~blocking addrs n =
  if n = 0 then invalid_arg "Trace.emit_mem: no active lanes";
  reserve_arena t n;
  let off = t.addrs_len in
  let arena = t.addrs in
  for k = 0 to n - 1 do
    arena.(off + k) <- addrs.(k) land Repro_mem.Vaddr.va_mask
  done;
  t.addrs_len <- off + n;
  push t ~op ~label ~active:n ~rep:1 ~blocking ~aoff:off;
  off

let emit_mem t ~op ~label ~blocking addrs =
  emit_mem_n t ~op ~label ~blocking addrs (Array.length addrs)

let emit_load t ~label ~blocking addrs =
  emit_mem t ~op:op_load ~label ~blocking addrs

let emit_load_n t ~label ~blocking addrs n =
  emit_mem_n t ~op:op_load ~label ~blocking addrs n

let emit_store t ~label addrs =
  emit_mem t ~op:op_store ~label ~blocking:false addrs

let emit_store_n t ~label addrs n =
  emit_mem_n t ~op:op_store ~label ~blocking:false addrs n

let emit_compute t ~label ~n ~blocking ~active =
  if n <= 0 then invalid_arg "Trace.emit_compute: n must be positive";
  push t ~op:op_compute ~label ~active ~rep:n ~blocking ~aoff:(-1)

let emit_ctrl t ~label ~n ~active =
  if n <= 0 then invalid_arg "Trace.emit_ctrl: n must be positive";
  push t ~op:op_ctrl ~label ~active ~rep:n ~blocking:false ~aoff:(-1)

let emit_const_load t ~label ~active =
  push t ~op:op_const_load ~label ~active ~rep:1 ~blocking:true ~aoff:(-1)

let emit_call_indirect t ~label ~active =
  push t ~op:op_call_indirect ~label ~active ~rep:1 ~blocking:true ~aoff:(-1)

let emit_call_direct t ~label ~active =
  push t ~op:op_call_direct ~label ~active ~rep:1 ~blocking:true ~aoff:(-1)

(* --- replay accessors (no bounds logic beyond the array checks) -------- *)

let check t i label =
  if i < 0 || i >= t.len then
    invalid_arg ("Trace." ^ label ^ ": index out of bounds")

let op t i = t.op.(i)
let label_index t i = t.lbl.(i)
let active t i = t.act.(i)
let repeat t i = t.rep.(i)
let is_blocking t i = t.blk.(i) <> 0
let addr_off t i = t.aoff.(i)

let arena t = t.addrs
(* The current arena array. Further emission may replace it (growth), so
   fetch it again after any emit; during replay the trace is frozen. *)

(* --- compatibility view ----------------------------------------------- *)

let get t i : Instr.t =
  check t i "get";
  let label = Label.of_index t.lbl.(i) in
  let blocking = t.blk.(i) <> 0 in
  let active = t.act.(i) in
  let payload () = Array.sub t.addrs t.aoff.(i) active in
  let kind : Instr.kind =
    match t.op.(i) with
    | 0 -> Instr.Load (payload ())
    | 1 -> Instr.Store (payload ())
    | 2 -> Instr.Compute t.rep.(i)
    | 3 -> Instr.Ctrl t.rep.(i)
    | 4 -> Instr.Const_load
    | 5 -> Instr.Call_indirect
    | _ -> Instr.Call_direct
  in
  { Instr.label; kind; blocking; active }

let emit t (i : Instr.t) =
  match i.Instr.kind with
  | Instr.Load addrs ->
    ignore (emit_load t ~label:i.Instr.label ~blocking:i.Instr.blocking addrs)
  | Instr.Store addrs -> ignore (emit_store t ~label:i.Instr.label addrs)
  | Instr.Compute n ->
    emit_compute t ~label:i.Instr.label ~n ~blocking:i.Instr.blocking
      ~active:i.Instr.active
  | Instr.Ctrl n -> emit_ctrl t ~label:i.Instr.label ~n ~active:i.Instr.active
  | Instr.Const_load -> emit_const_load t ~label:i.Instr.label ~active:i.Instr.active
  | Instr.Call_indirect ->
    emit_call_indirect t ~label:i.Instr.label ~active:i.Instr.active
  | Instr.Call_direct ->
    emit_call_direct t ~label:i.Instr.label ~active:i.Instr.active

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

(* --- interning ---------------------------------------------------------

   The paper's workloads are homogeneous per type: every warp over a
   type-sharded (or COAL-sorted) range executes the same instruction
   stream, so a launch's [n_warps] traces collapse to a handful of
   distinct column sets. [Intern.seal] hash-conses the record columns
   (op/lbl/act/rep/blk — and aoff, which is a running sum of the act
   column over memory records and therefore equal whenever they are):
   warps with identical streams share one physical set of column arrays.

   The address arena is deliberately NOT interned: two warps with the
   same instruction stream still touch different objects, and those
   per-lane addresses are what drive coalescing, cache and TLB state
   during replay. Each sealed trace therefore carries a private,
   exact-size arena copy. Replay reads columns through the shared arrays
   and addresses through the private arena — structurally identical to an
   un-interned trace, so timing is byte-identical by construction. *)
module Intern = struct
  type pool = {
    tbl : (int, t list ref) Hashtbl.t;  (* stream hash -> representatives *)
    mutable sealed : int;
    mutable unique : int;
    mutable sealed_instrs : int;
    mutable unique_instrs : int;
  }

  let create () =
    { tbl = Hashtbl.create 64; sealed = 0; unique = 0; sealed_instrs = 0;
      unique_instrs = 0 }

  let mix h v =
    let h = h lxor (v + 0x9e3779b9 + (h lsl 6) + (h lsr 2)) in
    h land max_int

  let stream_hash tr =
    let h = ref (mix 0 tr.len) in
    for i = 0 to tr.len - 1 do
      h := mix !h tr.op.(i);
      h := mix !h tr.lbl.(i);
      h := mix !h tr.act.(i);
      h := mix !h tr.rep.(i);
      h := mix !h tr.blk.(i)
    done;
    !h

  let same_stream a b =
    a.len = b.len
    &&
    let rec eq i =
      i >= a.len
      || (a.op.(i) = b.op.(i) && a.lbl.(i) = b.lbl.(i)
          && a.act.(i) = b.act.(i) && a.rep.(i) = b.rep.(i)
          && a.blk.(i) = b.blk.(i) && eq (i + 1))
    in
    eq 0

  let seal pool scratch =
    let n = scratch.len in
    let addrs = Array.sub scratch.addrs 0 scratch.addrs_len in
    pool.sealed <- pool.sealed + 1;
    pool.sealed_instrs <- pool.sealed_instrs + scratch.instr_total;
    let h = stream_hash scratch in
    let bucket =
      match Hashtbl.find_opt pool.tbl h with
      | Some b -> b
      | None ->
        let b = ref [] in
        Hashtbl.add pool.tbl h b;
        b
    in
    match List.find_opt (fun r -> same_stream r scratch) !bucket with
    | Some r ->
      (* Column hit: share the representative's arrays, private arena. *)
      { len = n; op = r.op; lbl = r.lbl; act = r.act; rep = r.rep;
        blk = r.blk; aoff = r.aoff; addrs;
        addrs_len = scratch.addrs_len; instr_total = scratch.instr_total }
    | None ->
      let sub a = Array.sub a 0 n in
      let r =
        { len = n; op = sub scratch.op; lbl = sub scratch.lbl;
          act = sub scratch.act; rep = sub scratch.rep;
          blk = sub scratch.blk; aoff = sub scratch.aoff; addrs;
          addrs_len = scratch.addrs_len; instr_total = scratch.instr_total }
      in
      bucket := r :: !bucket;
      pool.unique <- pool.unique + 1;
      pool.unique_instrs <- pool.unique_instrs + scratch.instr_total;
      r

  let sealed p = p.sealed
  let unique p = p.unique
  let sealed_instrs p = p.sealed_instrs
  let unique_instrs p = p.unique_instrs
end

let shares_columns a b = a.op == b.op

(* Column views for the fused replay loop: hoisted once per launch so the
   per-instruction reads are direct (unsafe) array loads instead of
   cross-module calls. Only the first [length] records (and the first
   [arena_length] arena cells) are live. *)
module Raw = struct
  let op_col t = t.op
  let lbl_col t = t.lbl
  let act_col t = t.act
  let rep_col t = t.rep
  let blk_col t = t.blk
  let aoff_col t = t.aoff
end

let arena_length t = t.addrs_len
