type t = {
  intern : bool;
  intra : bool;
  intra_jobs : int;
}

let default = { intern = true; intra = false; intra_jobs = 0 }

let legacy = { default with intern = false }

let resolve_jobs t =
  if t.intra_jobs > 0 then t.intra_jobs
  else Repro_util.Pool.available_workers ()
