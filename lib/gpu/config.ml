type t = {
  warp_size : int;
  n_sms : int;
  max_warps_per_sm : int;
  issue_width : int;
  compute_latency : int;
  ctrl_latency : int;
  const_latency : int;
  call_indirect_latency : int;
  call_direct_latency : int;
  l1_geometry : Cache.geometry;
  l1_latency : int;
  l1_sector_throughput : float;
  lsu_throughput : float;
  l2_geometry : Cache.geometry;
  l2_latency : int;
  l2_sector_throughput : float;
  dram_latency : int;
  dram_sector_throughput : float;
}

let default =
  {
    warp_size = 32;
    n_sms = 8;
    max_warps_per_sm = 32;
    issue_width = 2;
    compute_latency = 4;
    ctrl_latency = 8;
    const_latency = 10;
    call_indirect_latency = 45;
    call_direct_latency = 10;
    l1_geometry = Cache.geometry ~size_bytes:(128 * 1024) ~line_bytes:128 ~ways:4;
    l1_latency = 28;
    l1_sector_throughput = 4.0;
    lsu_throughput = 1.0;
    l2_geometry = Cache.geometry ~size_bytes:(512 * 1024) ~line_bytes:128 ~ways:16;
    l2_latency = 160;
    l2_sector_throughput = 6.0;
    dram_latency = 250;
    dram_sector_throughput = 3.0;
  }

let v100_like =
  {
    default with
    n_sms = 80;
    max_warps_per_sm = 64;
    l2_geometry = Cache.geometry ~size_bytes:(6 * 1024 * 1024) ~line_bytes:128 ~ways:24;
    l2_sector_throughput = 48.0;
    dram_sector_throughput = 20.0;
  }

(* Largest power of two <= n (n >= 1). *)
let rec pow2_floor n = if n land (n - 1) = 0 then n else pow2_floor (n land (n - 1))

(* The per-SM slice of the memory system used by intra-launch sharded
   timing: one SM, its own L1 (unchanged — L1s are per-SM already), a
   private 1/n_sms slice of the L2 (rounded down to a power-of-two set
   count, as the lookup path requires) and 1/n_sms of the L2 and DRAM
   sector bandwidth. Latencies are per-access and stay as they are. *)
let slice t =
  if t.n_sms = 1 then t
  else begin
    let g = t.l2_geometry in
    let sets = g.Cache.size_bytes / (g.Cache.line_bytes * g.Cache.ways) in
    let slice_sets = pow2_floor (max 1 (sets / t.n_sms)) in
    let shards = float_of_int t.n_sms in
    {
      t with
      n_sms = 1;
      l2_geometry =
        Cache.geometry
          ~size_bytes:(slice_sets * g.Cache.line_bytes * g.Cache.ways)
          ~line_bytes:g.Cache.line_bytes ~ways:g.Cache.ways;
      l2_sector_throughput = t.l2_sector_throughput /. shards;
      dram_sector_throughput = t.dram_sector_throughput /. shards;
    }
  end

let validate t =
  let positive name v = if v <= 0 then invalid_arg ("Config: " ^ name ^ " must be positive") in
  let positive_f name v =
    if v <= 0. then invalid_arg ("Config: " ^ name ^ " must be positive")
  in
  positive "warp_size" t.warp_size;
  positive "n_sms" t.n_sms;
  positive "max_warps_per_sm" t.max_warps_per_sm;
  positive "issue_width" t.issue_width;
  positive "compute_latency" t.compute_latency;
  positive "ctrl_latency" t.ctrl_latency;
  positive "const_latency" t.const_latency;
  positive "call_indirect_latency" t.call_indirect_latency;
  positive "call_direct_latency" t.call_direct_latency;
  positive "l1_latency" t.l1_latency;
  positive "l2_latency" t.l2_latency;
  positive "dram_latency" t.dram_latency;
  positive_f "l1_sector_throughput" t.l1_sector_throughput;
  positive_f "lsu_throughput" t.lsu_throughput;
  positive_f "l2_sector_throughput" t.l2_sector_throughput;
  positive_f "dram_sector_throughput" t.dram_sector_throughput

let pp ppf t =
  Format.fprintf ppf
    "@[<v>GPU: %d SMs x %d warps, warp=%d, issue=%d/cyc@,\
     L1 %dKB (lat %d), L2 %dKB (lat %d), DRAM lat %d, DRAM bw %.1f sec/cyc@]"
    t.n_sms t.max_warps_per_sm t.warp_size t.issue_width
    (t.l1_geometry.Cache.size_bytes / 1024)
    t.l1_latency
    (t.l2_geometry.Cache.size_bytes / 1024)
    t.l2_latency t.dram_latency t.dram_sector_throughput
