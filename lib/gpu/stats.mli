(** Run counters.

    Everything the paper's figures report is derived from these: dynamic
    warp instructions by class (Fig. 7), global load transactions (Fig. 8),
    L1 hit rate (Fig. 9), and per-label attributed stall cycles, the
    PC-sampling stand-in behind Fig. 1b. Counters accumulate across kernel
    launches until {!reset}. *)

type t

val create : unit -> t

val reset : t -> unit

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val copy : t -> t
(** A detached snapshot (fresh arrays, same values). *)

(** {2 Recording (used by the timing engine)} *)

val count_instr : t -> Instr.t -> unit

val count_classified : t -> [ `Mem | `Compute | `Ctrl ] -> int -> unit
(** [count_classified t cls n] records [n] dynamic instructions of class
    [cls] — the pre-classified form {!count_instr} reduces to; the SoA
    replay loop calls it with the trace's opcode already decoded. *)

val count_load_transactions : t -> Label.t -> int -> unit

val count_load_transactions_idx : t -> int -> int -> unit
(** {!count_load_transactions} by [Label.to_index] — the replay-path
    variant that avoids materializing a [Label.t]. *)

val count_store_transactions : t -> int -> unit

val count_l1 : t -> hit:bool -> unit

val count_l2 : t -> hit:bool -> unit

val count_dram_sector : t -> unit

val count_trace_dropped : t -> int -> unit
(** Accumulate telemetry ring-buffer drops (events lost to the
    drop-oldest spill policy; see {!Telemetry.Ring}). *)

val count_tlb_l1_hit : t -> unit

val count_tlb_l2_hit : t -> unit

val count_tlb_walk : t -> float -> unit
(** One page walk plus the cycles it was charged. *)

val attribute_stall : t -> Label.t -> float -> unit

val stall_accumulator : t -> float array
(** The raw per-label stall array (indexed by [Label.to_index]), exposed
    so the replay loop can accumulate stalls with flat float-array
    stores instead of a boxed [float] argument per call. Aliases the
    live counters — treat as write-accumulate only. *)

val load_transactions_accumulator : t -> int array
(** The raw per-label load-transaction array, same contract as
    {!stall_accumulator}: hoisted by the fused replay loop. *)

val bump_replay_counters :
  t ->
  mem:int -> compute:int -> ctrl:int ->
  load_trans:int -> store_trans:int ->
  l1_hits:int -> l1_misses:int -> l2_hits:int -> l2_misses:int ->
  dram_sectors:int -> unit
(** Flush the fused replay loop's locally-accumulated integer counters in
    one call; exactly equivalent to the per-instruction [count_*]
    sequence it replaces. *)

val add_cycles : t -> float -> unit

val count_san_violations : t -> int array -> unit
(** Accumulate a per-kind sanitizer violation delta, indexed by
    [Repro_san.Violation.kind_index] (the device feeds each launch's
    {!Repro_san.Checker.take_kernel_delta} here). *)

(** {2 Reading} *)

val cycles : t -> float
(** Total kernel cycles accumulated (sum over launches of the slowest
    SM's completion time). *)

val instructions : t -> [ `Mem | `Compute | `Ctrl ] -> int

val total_instructions : t -> int

val load_transactions : t -> int
(** Global load transactions (32 B sectors requested by loads). *)

val load_transactions_for : t -> Label.t -> int
(** Transactions attributed to one instruction label (Table 1's
    per-operation access accounting). *)

val store_transactions : t -> int

val l1_hits : t -> int

val l1_misses : t -> int

val l2_hits : t -> int

val l2_misses : t -> int

val l1_accesses : t -> int

val l1_hit_rate : t -> float
(** In [0,1]; [0.] when there were no accesses. *)

val l2_hit_rate : t -> float

val dram_sectors : t -> int

val trace_dropped : t -> int

val tlb_l1_hits : t -> int

val tlb_l2_hits : t -> int

val tlb_walks : t -> int

val tlb_walk_cycles : t -> float

val tlb_lookups : t -> int
(** Total translations ([l1 + l2 + walks]); zero when no page policy was
    active. *)

val stall_cycles : t -> Label.t -> float

val total_stall_cycles : t -> float

val san_violations_for : t -> Repro_san.Violation.kind -> int

val total_san_violations : t -> int

(** {2 Wire form}

    The serve protocol ships counter snapshots between the daemon and its
    clients. [raw] exposes every field of a snapshot as plain data so a
    serializer outside this library can encode it exactly and rebuild an
    identical [t] — floats are carried as floats (the JSON layer's
    shortest-round-trip representation keeps them bit-exact), so a
    decoded snapshot compares bit-for-bit with the original. *)

type raw = {
  cycles : float;
  mem_instrs : int;
  compute_instrs : int;
  ctrl_instrs : int;
  load_transactions : int;
  store_transactions : int;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  dram_sectors : int;
  trace_dropped : int;
  tlb_l1_hits : int;
  tlb_l2_hits : int;
  tlb_walks : int;
  tlb_walk_cycles : float;
  stalls : float array;  (** Indexed by [Label.to_index]; length [Label.count]. *)
  load_transactions_by_label : int array;  (** Ditto. *)
  san_violations : int array;
      (** Indexed by [Repro_san.Violation.kind_index]. *)
}

val to_raw : t -> raw
(** A detached plain-data snapshot (fresh arrays). *)

val of_raw : raw -> t
(** Rebuild a snapshot; raises [Invalid_argument] when an array length
    does not match its index space. *)

val pp : Format.formatter -> t -> unit
(** One-line counter summary plus, when any stalls were attributed, a
    per-label stall-share breakdown (driven by {!Label.all}). The full
    enumerable metric view lives in [Repro_obs.Metric]. *)
