(** The SIMT kernel-authoring DSL (functional phase).

    A kernel body runs once per warp, in lockstep over the warp's active
    lanes. Per-lane state is carried in arrays parallel to {!tids}. Every
    operation both performs its functional effect against the simulated
    heap and records a labelled warp instruction in the trace that the
    timing phase later replays.

    Addresses may carry TypePointer tag bits; they are stripped before the
    heap or the coalescer sees them (the hardware-MMU view). Charging the
    extra strip instructions of the silicon prototype is the object
    model's job, not this module's.

    Divergence: {!diverge} splits the active mask by a per-lane key and
    runs the body once per distinct key over that subset, serializing the
    subsets exactly like the SIMT reconvergence stack, and charging one
    control instruction per executed subset. *)

type t

val create :
  ?san:Repro_san.Checker.t -> ?fused:bool -> ?trace:Trace.t ->
  heap:Repro_mem.Page_store.t -> warp_id:int -> lanes:int array -> unit -> t
(** Used by the device launch path; [lanes] are the global thread ids of
    the active lanes (≤ warp size, non-empty). When [san] is given, every
    {!load} and {!store} reports its raw (pre-strip) per-lane addresses to
    the sanitizer before the heap sees them. [trace] lets the interned
    emission engine pass a reusable scratch trace (default: a fresh
    one); [fused] (default false) turns on the interned engine's fused
    emission paths here and in callers that key on {!fused} — traces are
    byte-identical either way. *)

val fused : t -> bool
(** True on interned-engine, unsanitized runs: callers with a fused
    emission path (scratch-buffer addresses, {!load_into}/{!store_from})
    should take it. *)

val addr_scratch : t -> int -> int array
(** A reusable per-warp address buffer of at least the given size, for
    fused callers to fill and hand to {!load_into}/{!store_from}. Only
    valid until the next [addr_scratch] caller; never held across a
    kernel-body call. *)

val trace : t -> Trace.t

val warp_id : t -> int

val tids : t -> int array
(** Global thread ids of the currently active lanes. *)

val n_active : t -> int

val load : ?width:int -> t -> label:Label.t -> int array -> int array
(** [load t ~label addrs] emits one global-load warp instruction and
    returns the loaded words, zero-extended. [addrs] is per-active-lane;
    [width] is the access size in bytes (1, 2, 4 or 8; default 8) —
    narrower fields are how real object layouts pack, and the coalescer
    sees the true byte addresses. *)

val load_nonblocking : ?width:int -> t -> label:Label.t -> int array -> int array
(** Same, but the warp does not stall on the result (prefetch-like). *)

val store : ?width:int -> t -> label:Label.t -> int array -> int array -> unit
(** [store t ~label addrs values]; values are truncated to [width]. *)

val load_into :
  ?width:int -> t -> label:Label.t -> blocking:bool -> addrs:int array ->
  n:int -> int array
(** [load_into t ~label ~blocking ~addrs ~n] is {!load} over
    [addrs.(0 .. n-1)], where [addrs] is a caller-owned scratch buffer
    that may be wider than the warp ([n] must equal {!n_active}). The
    fused fast path of the object model: only the returned value array is
    allocated. *)

val store_from :
  ?width:int -> t -> label:Label.t -> addrs:int array -> n:int ->
  int array -> unit
(** Scratch-buffer form of {!store}. *)

val compute : ?n:int -> ?blocking:bool -> t -> label:Label.t -> unit
(** [n] dependent ALU instructions (default 1). *)

val ctrl : ?n:int -> t -> label:Label.t -> unit

val const_load : t -> label:Label.t -> unit

val call_indirect : t -> label:Label.t -> unit

val call_direct : t -> label:Label.t -> unit

val group_by_key : int array -> (int * int list) list
(** Distinct keys in first-occurrence order with the member indices of
    each group — the reference grouping the fused divergence path must
    match; exposed for tests and probes. *)

val diverge :
  t -> label:Label.t -> keys:int array -> (key:int -> t -> int array -> unit) -> unit
(** [diverge t ~label ~keys body] groups active lanes by [keys] (one key
    per active lane) and calls [body ~key sub parent_idxs] for each
    distinct key in first-occurrence order, where [sub] is the context
    restricted to that subset and [parent_idxs] maps [sub]'s lanes back to
    indices in [t]'s active arrays. *)

val if_ :
  t -> label:Label.t -> pred:bool array ->
  (t -> int array -> unit) -> (t -> int array -> unit) option -> unit
(** Two-way sugar over {!diverge}. The else branch may be [None]. *)

val gather : int array -> int array -> int array
(** [gather idxs a] selects [a.(i)] for each [i] in [idxs]; the standard
    way to restrict parent per-lane arrays inside a divergent branch. *)

val scatter : int array -> int array -> int array -> unit
(** [scatter idxs dst src] writes [src.(k)] to [dst.(idxs.(k))]. *)
