(* The event-driven warp scheduler, written as a zero-allocation replay
   loop: warp state is a pair of int arrays (program counter, and the
   round-robin SM is recomputed from the warp index), the ready queue is
   the flat {!Event_heap} with warp indices as payloads, and floats cross
   the [Mem_path] boundary through its [io] mailbox. Nothing on the
   per-instruction path builds a record, option, closure or boxed float;
   the only allocations are per-warp (activation list, heap growth),
   constant for a fixed launch shape regardless of trace length.

   Telemetry keeps that discipline: the plain drain loop below is
   untouched when no [Telemetry.t] is passed, and the instrumented twin
   only adds a float-array compare per pop (the sampler's boundary
   mailbox) plus direct int/float-array stores into the event ring —
   recording never boxes. The loops are written out twice rather than
   parameterized so the off path carries no telemetry branches at all. *)

(* Bit-identical to [Float.max] on this domain (non-NaN, no negative
   zero): simulated times only grow from 0 by positive increments. *)
let fmax (a : float) (b : float) = if a >= b then a else b

let run ?telemetry (cfg : Config.t) mem_path ~stats ~traces =
  Config.validate cfg;
  let n_warps = Array.length traces in
  if n_warps = 0 then 0.
  else begin
    Mem_path.begin_kernel mem_path;
    let issue_clock = Array.make cfg.n_sms 0. in
    let pcs = Array.make n_warps 0 in
    let events = Event_heap.create ~capacity:n_warps () in
    let kc = Event_heap.key_cell events in
    let io = Mem_path.io mem_path in
    (* finish.(0) is the kernel completion time; a float array cell
       rather than a [float ref], whose every [:=] would box. *)
    let finish = Array.make 1 0. in
    (* Warps are dealt round-robin to SMs; each SM activates its first
       [max_warps_per_sm] immediately and queues the rest. *)
    let pending = Array.make cfg.n_sms ([] : int list) in
    for i = n_warps - 1 downto 0 do
      let sm = i mod cfg.n_sms in
      pending.(sm) <- i :: pending.(sm)
    done;
    let activate sm now =
      match pending.(sm) with
      | [] -> ()
      | w :: rest ->
        pending.(sm) <- rest;
        kc.(0) <- now;
        Event_heap.push events w
    in
    for sm = 0 to cfg.n_sms - 1 do
      for _ = 1 to cfg.max_warps_per_sm do
        activate sm 0.
      done
    done;
    let issue_cost = 1. /. float_of_int cfg.issue_width in
    let ctrl_lat = float_of_int cfg.ctrl_latency in
    let const_lat = float_of_int cfg.const_latency in
    let call_ind_lat = float_of_int cfg.call_indirect_latency in
    let call_dir_lat = float_of_int cfg.call_direct_latency in
    (match telemetry with
     | None ->
       let stalls = Stats.stall_accumulator stats in
       let rec drain () =
         let w = Event_heap.pop events in
         if w >= 0 then begin
           let ready = kc.(0) in
           let tr = traces.(w) in
           let pc = pcs.(w) in
           let sm = w mod cfg.n_sms in
           if pc >= Trace.length tr then begin
             (* Warp retires; its slot frees for a pending warp. *)
             if ready > finish.(0) then finish.(0) <- ready;
             activate sm ready
           end
           else begin
             pcs.(w) <- pc + 1;
             let op = Trace.op tr pc in
             let lbl = Trace.label_index tr pc in
             let rep = Trace.repeat tr pc in
             Stats.count_classified stats
               (if op = Trace.op_compute then `Compute
                else if op = Trace.op_ctrl || op >= Trace.op_call_indirect then `Ctrl
                else `Mem)
               rep;
             let issue_time = fmax ready issue_clock.(sm) in
             let slots = float_of_int rep *. issue_cost in
             issue_clock.(sm) <- issue_time +. slots;
             let next_ready =
               if op = Trace.op_load then begin
                 io.(0) <- issue_time;
                 Mem_path.load_soa mem_path ~stats ~label_idx:lbl ~sm
                   ~arena:(Trace.arena tr) ~off:(Trace.addr_off tr pc)
                   ~len:(Trace.active tr pc);
                 if Trace.is_blocking tr pc then io.(1) else issue_time +. slots
               end
               else if op = Trace.op_store then begin
                 io.(0) <- issue_time;
                 Mem_path.store_soa mem_path ~stats ~sm ~arena:(Trace.arena tr)
                   ~off:(Trace.addr_off tr pc) ~len:(Trace.active tr pc);
                 issue_time +. slots
               end
               else if op = Trace.op_compute then
                 if Trace.is_blocking tr pc then
                   (* A dependent ALU chain: each op waits on the previous. *)
                   issue_time +. float_of_int (rep * cfg.compute_latency)
                 else issue_time +. slots
               else if op = Trace.op_ctrl then issue_time +. ctrl_lat
               else if op = Trace.op_const_load then issue_time +. const_lat
               else if op = Trace.op_call_indirect then issue_time +. call_ind_lat
               else issue_time +. call_dir_lat
             in
             let stall = next_ready -. issue_time -. slots in
             if stall > 0. then stalls.(lbl) <- stalls.(lbl) +. stall;
             kc.(0) <- next_ready;
             Event_heap.push events w
           end;
           drain ()
         end
       in
       drain ()
     | Some tel ->
       let sampler = tel.Telemetry.sampler in
       let ring = tel.Telemetry.ring in
       (* With sampling on, counters flow into the open window's row;
          [cur]/[stalls] are refs so the rare boundary crossing can swap
          them (a pointer store, no allocation). The infinity mailbox
          makes the per-pop compare uniform when sampling is off. *)
       let bcell =
         match sampler with
         | Some s -> Telemetry.Sampler.boundary_cell s
         | None -> Array.make 1 infinity
       in
       let cur =
         ref
           (match sampler with
            | Some s -> Telemetry.Sampler.current s
            | None -> stats)
       in
       let stalls = ref (Stats.stall_accumulator !cur) in
       let rec drain () =
         let w = Event_heap.pop events in
         if w >= 0 then begin
           let ready = kc.(0) in
           if ready >= bcell.(0) then begin
             match sampler with
             | Some s ->
               Telemetry.Sampler.advance s ~now:ready;
               let row = Telemetry.Sampler.current s in
               cur := row;
               stalls := Stats.stall_accumulator row
             | None -> ()
           end;
           let tr = traces.(w) in
           let pc = pcs.(w) in
           let sm = w mod cfg.n_sms in
           if pc >= Trace.length tr then begin
             if ready > finish.(0) then finish.(0) <- ready;
             activate sm ready
           end
           else begin
             pcs.(w) <- pc + 1;
             let op = Trace.op tr pc in
             let lbl = Trace.label_index tr pc in
             let rep = Trace.repeat tr pc in
             let st = !cur in
             Stats.count_classified st
               (if op = Trace.op_compute then `Compute
                else if op = Trace.op_ctrl || op >= Trace.op_call_indirect then `Ctrl
                else `Mem)
               rep;
             let issue_time = fmax ready issue_clock.(sm) in
             let slots = float_of_int rep *. issue_cost in
             issue_clock.(sm) <- issue_time +. slots;
             let next_ready =
               if op = Trace.op_load then begin
                 io.(0) <- issue_time;
                 Mem_path.load_soa mem_path ~stats:st ~label_idx:lbl ~sm
                   ~arena:(Trace.arena tr) ~off:(Trace.addr_off tr pc)
                   ~len:(Trace.active tr pc);
                 if Trace.is_blocking tr pc then io.(1) else issue_time +. slots
               end
               else if op = Trace.op_store then begin
                 io.(0) <- issue_time;
                 Mem_path.store_soa mem_path ~stats:st ~sm ~arena:(Trace.arena tr)
                   ~off:(Trace.addr_off tr pc) ~len:(Trace.active tr pc);
                 issue_time +. slots
               end
               else if op = Trace.op_compute then
                 if Trace.is_blocking tr pc then
                   issue_time +. float_of_int (rep * cfg.compute_latency)
                 else issue_time +. slots
               else if op = Trace.op_ctrl then issue_time +. ctrl_lat
               else if op = Trace.op_const_load then issue_time +. const_lat
               else if op = Trace.op_call_indirect then issue_time +. call_ind_lat
               else issue_time +. call_dir_lat
             in
             let stall = next_ready -. issue_time -. slots in
             if stall > 0. then begin
               let sa = !stalls in
               sa.(lbl) <- sa.(lbl) +. stall;
               match ring with
               | Some r ->
                 (* Stall span, written field by field (a helper taking
                    ts/dur floats would box them per event). *)
                 let i = r.Telemetry.Ring.head in
                 r.Telemetry.Ring.kind.(i) <- Telemetry.Ring.kind_stall;
                 r.Telemetry.Ring.track.(i) <- sm;
                 r.Telemetry.Ring.arg_a.(i) <- lbl;
                 r.Telemetry.Ring.arg_b.(i) <- w;
                 let t0 = r.Telemetry.Ring.cells.(0) +. issue_time +. slots in
                 r.Telemetry.Ring.ts.(i) <- t0;
                 r.Telemetry.Ring.dur.(i) <- stall;
                 let e = t0 +. stall in
                 if e > r.Telemetry.Ring.cells.(1) then
                   r.Telemetry.Ring.cells.(1) <- e;
                 Telemetry.Ring.bump r
               | None -> ()
             end;
             kc.(0) <- next_ready;
             Event_heap.push events w
           end;
           drain ()
         end
       in
       drain ());
    finish.(0)
  end

(* [Cache.access] over raw arrays for the fused loop below: same scan
   orders, same clock/stamp updates, returning a bare bool (true = the
   sector was valid). Top level so the call carries no closure
   environment; every argument is an int or an array, so nothing boxes. *)
let access_raw (tags : int array) (valid : int array) (stamps : int array)
    (clock : int array) ways sshift smask setmask sector =
  let line = sector lsr sshift in
  let set = line land setmask in
  let now = clock.(0) + 1 in
  clock.(0) <- now;
  let bit = 1 lsl (sector land smask) in
  let base = set * ways in
  (* First way holding [line], scanning way 0 upward (Cache.find_slot). *)
  let slot = ref (-1) in
  let way = ref 0 in
  while !slot < 0 && !way < ways do
    if Array.unsafe_get tags (base + !way) = line then slot := base + !way
    else incr way
  done;
  if !slot >= 0 then begin
    let s = !slot in
    Array.unsafe_set stamps s now;
    if Array.unsafe_get valid s land bit <> 0 then true
    else begin
      Array.unsafe_set valid s (Array.unsafe_get valid s lor bit);
      false
    end
  end
  else begin
    (* Evict the LRU way: min stamp, first-found on ties (Cache.lru_slot
       scans way 1 upward with a strict compare). *)
    let best = ref base in
    for k = 1 to ways - 1 do
      if Array.unsafe_get stamps (base + k) < Array.unsafe_get stamps !best
      then best := base + k
    done;
    let s = !best in
    Array.unsafe_set tags s line;
    Array.unsafe_set valid s bit;
    Array.unsafe_set stamps s now;
    false
  end

(* The fused replay twin of [run]: same event order, same float
   operations in the same sequence, so the launch it times is
   byte-identical in cycles and counters — verified by the qcheck
   equivalence test and the legacy-engine sweep diff. What changes is
   only mechanics (this build has no flambda, so every cross-module
   call in [run]'s per-instruction path is a real call):

   - trace columns, cache state and memory-path clocks are hoisted into
     locals once per launch, and the [Mem_path.load_soa]/[store_soa]
     hierarchy walk and [Cache.access] are inlined over them
     ([access_raw]), eliminating the per-sector call chain;
   - the event heap is a local replace-top heap: every pop is followed
     by at most one push (the re-issue or an activation), which a
     pop-then-push pair services with a single root sift. Heap content
     after each step equals [Event_heap]'s (same keys, same insertion
     sequence numbers), and the pop order — the only thing timing and
     counters depend on — is the lexicographic (key, seq) minimum of
     that content, so it is identical by construction;
   - int counters (instruction classes, transactions, hits, DRAM
     sectors) accumulate in locals and flush once per launch through
     [Stats.bump_replay_counters]; integer adds are exact, so the
     totals match per-instruction counting bit for bit.

   The precondition mirrors the engine gate in [Device]: no telemetry
   and no address translation ([Mem_path.plain]); [run] remains the
   reference path for those and for the legacy engine. *)
let run_fused (cfg : Config.t) mem_path ~stats ~traces =
  Config.validate cfg;
  if not (Mem_path.plain mem_path) then
    invalid_arg "Sm.run_fused: mem path has telemetry or translation attached";
  let n_warps = Array.length traces in
  if n_warps = 0 then 0.
  else begin
    Mem_path.begin_kernel mem_path;
    let n_sms = cfg.n_sms in
    let issue_clock = Array.make n_sms 0. in
    let pcs = Array.make n_warps 0 in
    (* Per-warp trace columns, hoisted. [lens] is the logical length, so
       an in-bounds [pc] indexes every column safely (unsafe gets). *)
    let lens = Array.map Trace.length traces in
    let ops = Array.map Trace.Raw.op_col traces in
    let lbls = Array.map Trace.Raw.lbl_col traces in
    let acts = Array.map Trace.Raw.act_col traces in
    let reps = Array.map Trace.Raw.rep_col traces in
    let blks = Array.map Trace.Raw.blk_col traces in
    let aoffs = Array.map Trace.Raw.aoff_col traces in
    let arenas = Array.map Trace.arena traces in
    (* Memory-path state and precomputed costs, hoisted. *)
    let scratch = Mem_path.Raw.scratch mem_path in
    let l1_next_free = Mem_path.Raw.l1_next_free mem_path in
    let lsu_next_free = Mem_path.Raw.lsu_next_free mem_path in
    let clk = Mem_path.Raw.clk mem_path in
    let inv_l1_tp = Mem_path.Raw.inv_l1_tp mem_path in
    let inv_l2_tp = Mem_path.Raw.inv_l2_tp mem_path in
    let inv_lsu_tp = Mem_path.Raw.inv_lsu_tp mem_path in
    let inv_dram_cost = Mem_path.Raw.inv_dram_cost mem_path in
    let dram_pair_cost = Mem_path.Raw.dram_pair_cost mem_path in
    let l1_lat = Mem_path.Raw.l1_lat mem_path in
    let l2_lat = Mem_path.Raw.l2_lat mem_path in
    let dram_lat = Mem_path.Raw.dram_lat mem_path in
    let n_over_l1 = Mem_path.Raw.n_over_l1 mem_path in
    let l1s = Mem_path.Raw.l1s mem_path in
    let l1_tags = Array.map Cache.Raw.tags l1s in
    let l1_valid = Array.map Cache.Raw.valid l1s in
    let l1_stamps = Array.map Cache.Raw.stamps l1s in
    let l1_clock = Array.map Cache.Raw.clock_cell l1s in
    let l1_ways = Cache.Raw.ways l1s.(0) in
    let l1_sshift = Cache.Raw.sector_shift l1s.(0) in
    let l1_smask = Cache.Raw.sector_mask l1s.(0) in
    let l1_setmask = Cache.Raw.set_mask l1s.(0) in
    let l2 = Mem_path.Raw.l2 mem_path in
    let l2_tags = Cache.Raw.tags l2 in
    let l2_valid = Cache.Raw.valid l2 in
    let l2_stamps = Cache.Raw.stamps l2 in
    let l2_clock = Cache.Raw.clock_cell l2 in
    let l2_ways = Cache.Raw.ways l2 in
    let l2_sshift = Cache.Raw.sector_shift l2 in
    let l2_smask = Cache.Raw.sector_mask l2 in
    let l2_setmask = Cache.Raw.set_mask l2 in
    (* Stats sinks: float stalls and per-label transactions stream to
       the shared accumulators; scalar int counters stay in locals until
       the one flush at the end. *)
    let stalls = Stats.stall_accumulator stats in
    let ld_by_lbl = Stats.load_transactions_accumulator stats in
    let n_mem = ref 0 and n_comp = ref 0 and n_ctrl = ref 0 in
    let ld_tr = ref 0 and st_tr = ref 0 in
    let l1h = ref 0 and l1m = ref 0 and l2h = ref 0 and l2m = ref 0 in
    let dram = ref 0 in
    (* Load completion mailbox (io.(1)'s role) and kernel finish time. *)
    let compl_ = Array.make 1 0. in
    let finish = Array.make 1 0. in
    (* The replace-top heap. Capacity [n_warps] suffices: every pop is
       followed by at most one push, and the initial activations push at
       most one entry per warp. 4-ary with a hole sift (save the root
       entry, pull min-children up, place once): half the depth and a
       third of the array writes of a binary swap sift. Any exact
       min-queue yields the same pop order — each pop takes the
       lexicographic (key, seq) minimum of the same content — so the
       replay it drives is byte-identical regardless of arity. *)
    let hkeys = Array.make n_warps 0. in
    let hseqs = Array.make n_warps 0 in
    let hvals = Array.make n_warps 0 in
    let hlen = ref 0 in
    let hseq = ref 0 in
    let sift_down_root () =
      let n = !hlen in
      let k = Array.unsafe_get hkeys 0 in
      let q = Array.unsafe_get hseqs 0 in
      let v = Array.unsafe_get hvals 0 in
      let i = ref 0 in
      let cont = ref true in
      while !cont do
        let c0 = (4 * !i) + 1 in
        if c0 >= n then cont := false
        else begin
          let hi = if c0 + 3 < n - 1 then c0 + 3 else n - 1 in
          let s = ref c0 in
          for c = c0 + 1 to hi do
            if
              Array.unsafe_get hkeys c < Array.unsafe_get hkeys !s
              || (Array.unsafe_get hkeys c = Array.unsafe_get hkeys !s
                  && Array.unsafe_get hseqs c < Array.unsafe_get hseqs !s)
            then s := c
          done;
          let sk = Array.unsafe_get hkeys !s in
          if sk < k || (sk = k && Array.unsafe_get hseqs !s < q) then begin
            Array.unsafe_set hkeys !i sk;
            Array.unsafe_set hseqs !i (Array.unsafe_get hseqs !s);
            Array.unsafe_set hvals !i (Array.unsafe_get hvals !s);
            i := !s
          end
          else cont := false
        end
      done;
      Array.unsafe_set hkeys !i k;
      Array.unsafe_set hseqs !i q;
      Array.unsafe_set hvals !i v
    in
    (* Same warp dealing as [run]: round-robin to SMs, first
       [max_warps_per_sm] per SM active immediately. The initial pushes
       all carry key 0 with ascending seqs, so appending in order
       already satisfies the heap invariant (parent index < child index
       implies parent seq < child seq — for any arity). *)
    let pending = Array.make n_sms ([] : int list) in
    for i = n_warps - 1 downto 0 do
      let sm = i mod n_sms in
      pending.(sm) <- i :: pending.(sm)
    done;
    for sm = 0 to n_sms - 1 do
      for _ = 1 to cfg.max_warps_per_sm do
        match pending.(sm) with
        | [] -> ()
        | w :: rest ->
          pending.(sm) <- rest;
          hkeys.(!hlen) <- 0.;
          hseqs.(!hlen) <- !hseq;
          hvals.(!hlen) <- w;
          incr hseq;
          incr hlen
      done
    done;
    let issue_cost = 1. /. float_of_int cfg.issue_width in
    let ctrl_lat = float_of_int cfg.ctrl_latency in
    let const_lat = float_of_int cfg.const_latency in
    let call_ind_lat = float_of_int cfg.call_indirect_latency in
    let call_dir_lat = float_of_int cfg.call_direct_latency in
    let compute_latency = cfg.compute_latency in
    while !hlen > 0 do
      let ready = hkeys.(0) in
      let w = hvals.(0) in
      let sm = w mod n_sms in
      let pc = Array.unsafe_get pcs w in
      if pc >= Array.unsafe_get lens w then begin
        (* Warp retires; replace the root with the activated warp, or
           shrink the heap when this SM has no warp pending. *)
        if ready > finish.(0) then finish.(0) <- ready;
        match pending.(sm) with
        | [] ->
          let n = !hlen - 1 in
          hlen := n;
          if n > 0 then begin
            hkeys.(0) <- hkeys.(n);
            hseqs.(0) <- hseqs.(n);
            hvals.(0) <- hvals.(n);
            sift_down_root ()
          end
        | w' :: rest ->
          pending.(sm) <- rest;
          hkeys.(0) <- ready;
          hseqs.(0) <- !hseq;
          hvals.(0) <- w';
          incr hseq;
          sift_down_root ()
      end
      else begin
        Array.unsafe_set pcs w (pc + 1);
        let op = Array.unsafe_get (Array.unsafe_get ops w) pc in
        let lbl = Array.unsafe_get (Array.unsafe_get lbls w) pc in
        let rep = Array.unsafe_get (Array.unsafe_get reps w) pc in
        if op = Trace.op_compute then n_comp := !n_comp + rep
        else if op = Trace.op_ctrl || op >= Trace.op_call_indirect then
          n_ctrl := !n_ctrl + rep
        else n_mem := !n_mem + rep;
        let ic = Array.unsafe_get issue_clock sm in
        let issue_time = if ready >= ic then ready else ic in
        let slots = float_of_int rep *. issue_cost in
        Array.unsafe_set issue_clock sm (issue_time +. slots);
        let next_ready =
          if op = Trace.op_load then begin
            let arena = Array.unsafe_get arenas w in
            let off = Array.unsafe_get (Array.unsafe_get aoffs w) pc in
            let len = Array.unsafe_get (Array.unsafe_get acts w) pc in
            let n = Coalesce.sectors_into_unsafe ~buf:scratch arena ~off ~len in
            ld_tr := !ld_tr + n;
            ld_by_lbl.(lbl) <- ld_by_lbl.(lbl) + n;
            let lf = Array.unsafe_get lsu_next_free sm in
            let t0 = if issue_time >= lf then issue_time else lf in
            let occ = Array.unsafe_get n_over_l1 n in
            Array.unsafe_set lsu_next_free sm
              (t0 +. if inv_lsu_tp >= occ then inv_lsu_tp else occ);
            compl_.(0) <- t0;
            let l1t = Array.unsafe_get l1_tags sm in
            let l1v = Array.unsafe_get l1_valid sm in
            let l1st = Array.unsafe_get l1_stamps sm in
            let l1ck = Array.unsafe_get l1_clock sm in
            for i = 0 to n - 1 do
              let sector = Array.unsafe_get scratch i in
              let lnf = Array.unsafe_get l1_next_free sm in
              let t1 = if t0 >= lnf then t0 else lnf in
              Array.unsafe_set l1_next_free sm (t1 +. inv_l1_tp);
              if
                access_raw l1t l1v l1st l1ck l1_ways l1_sshift l1_smask
                  l1_setmask sector
              then begin
                incr l1h;
                let c = t1 +. l1_lat in
                if c > compl_.(0) then compl_.(0) <- c
              end
              else begin
                incr l1m;
                let a = t1 +. l1_lat in
                let t2 = if a >= clk.(0) then a else clk.(0) in
                clk.(0) <- t2 +. inv_l2_tp;
                if
                  access_raw l2_tags l2_valid l2_stamps l2_clock l2_ways
                    l2_sshift l2_smask l2_setmask sector
                then begin
                  incr l2h;
                  let c = t2 +. l2_lat in
                  if c > compl_.(0) then compl_.(0) <- c
                end
                else begin
                  incr l2m;
                  dram := !dram + 2;
                  ignore
                    (access_raw l2_tags l2_valid l2_stamps l2_clock l2_ways
                       l2_sshift l2_smask l2_setmask (sector lxor 1));
                  let b = t2 +. l2_lat in
                  let t3 = if b >= clk.(1) then b else clk.(1) in
                  clk.(1) <- t3 +. dram_pair_cost;
                  let c = t3 +. dram_lat in
                  if c > compl_.(0) then compl_.(0) <- c
                end
              end
            done;
            if Array.unsafe_get (Array.unsafe_get blks w) pc <> 0 then
              compl_.(0)
            else issue_time +. slots
          end
          else if op = Trace.op_store then begin
            let arena = Array.unsafe_get arenas w in
            let off = Array.unsafe_get (Array.unsafe_get aoffs w) pc in
            let len = Array.unsafe_get (Array.unsafe_get acts w) pc in
            let n = Coalesce.sectors_into_unsafe ~buf:scratch arena ~off ~len in
            st_tr := !st_tr + n;
            let lf = Array.unsafe_get lsu_next_free sm in
            let t0 = if issue_time >= lf then issue_time else lf in
            let occ = Array.unsafe_get n_over_l1 n in
            Array.unsafe_set lsu_next_free sm
              (t0 +. if inv_lsu_tp >= occ then inv_lsu_tp else occ);
            for i = 0 to n - 1 do
              let sector = Array.unsafe_get scratch i in
              let t2 = if t0 >= clk.(0) then t0 else clk.(0) in
              clk.(0) <- t2 +. inv_l2_tp;
              if
                not
                  (access_raw l2_tags l2_valid l2_stamps l2_clock l2_ways
                     l2_sshift l2_smask l2_setmask sector)
              then begin
                incr dram;
                let t3 = if t2 >= clk.(1) then t2 else clk.(1) in
                clk.(1) <- t3 +. inv_dram_cost
              end
            done;
            issue_time +. slots
          end
          else if op = Trace.op_compute then
            if Array.unsafe_get (Array.unsafe_get blks w) pc <> 0 then
              issue_time +. float_of_int (rep * compute_latency)
            else issue_time +. slots
          else if op = Trace.op_ctrl then issue_time +. ctrl_lat
          else if op = Trace.op_const_load then issue_time +. const_lat
          else if op = Trace.op_call_indirect then issue_time +. call_ind_lat
          else issue_time +. call_dir_lat
        in
        let stall = next_ready -. issue_time -. slots in
        if stall > 0. then stalls.(lbl) <- stalls.(lbl) +. stall;
        hkeys.(0) <- next_ready;
        hseqs.(0) <- !hseq;
        incr hseq;
        sift_down_root ()
      end
    done;
    Stats.bump_replay_counters stats ~mem:!n_mem ~compute:!n_comp
      ~ctrl:!n_ctrl ~load_trans:!ld_tr ~store_trans:!st_tr ~l1_hits:!l1h
      ~l1_misses:!l1m ~l2_hits:!l2h ~l2_misses:!l2m ~dram_sectors:!dram;
    finish.(0)
  end

(* Intra-launch sharded timing: each SM replays its own warps against a
   private slice of the memory system ([Config.slice] — own L1 as
   before, 1/n_sms of the L2 and of the L2/DRAM bandwidth), so the
   shards are fully independent and replay in parallel over the Domain
   pool. Per-SM stats are merged in SM order and the launch finishes at
   the slowest shard, making the result deterministic and independent of
   [jobs]. Warp dealing and intra-SM scheduling are exactly the
   sequential engine's (shard [s] gets warps [s, s+n_sms, ...] in
   order), so the only modelling difference is the statically-sliced L2
   and bandwidth. *)
let run_sharded (cfg : Config.t) ~shards ~jobs ~stats ~traces =
  Config.validate cfg;
  let n_sms = cfg.n_sms in
  if Array.length shards <> n_sms then
    invalid_arg "Sm.run_sharded: shard count does not match n_sms";
  let n_warps = Array.length traces in
  if n_warps = 0 then 0.
  else begin
    let scfg = Config.slice cfg in
    let shard_traces =
      Array.init n_sms (fun s ->
          let cnt = (n_warps - s + n_sms - 1) / n_sms in
          Array.init cnt (fun k -> traces.(s + (k * n_sms))))
    in
    let results =
      Repro_util.Pool.map ~jobs
        ~f:(fun s ->
          let st = Stats.create () in
          let cyc = run scfg shards.(s) ~stats:st ~traces:shard_traces.(s) in
          (cyc, st))
        (Array.init n_sms (fun s -> s))
    in
    let finish = Array.make 1 0. in
    Array.iter
      (function
        | Ok (cyc, st) ->
          Stats.add stats st;
          if cyc > finish.(0) then finish.(0) <- cyc
        | Error e -> raise e)
      results;
    finish.(0)
  end
