(* The event-driven warp scheduler, written as a zero-allocation replay
   loop: warp state is a pair of int arrays (program counter, and the
   round-robin SM is recomputed from the warp index), the ready queue is
   the flat {!Event_heap} with warp indices as payloads, and floats cross
   the [Mem_path] boundary through its [io] mailbox. Nothing on the
   per-instruction path builds a record, option, closure or boxed float;
   the only allocations are per-warp (activation list, heap growth),
   constant for a fixed launch shape regardless of trace length.

   Telemetry keeps that discipline: the plain drain loop below is
   untouched when no [Telemetry.t] is passed, and the instrumented twin
   only adds a float-array compare per pop (the sampler's boundary
   mailbox) plus direct int/float-array stores into the event ring —
   recording never boxes. The loops are written out twice rather than
   parameterized so the off path carries no telemetry branches at all. *)

(* Bit-identical to [Float.max] on this domain (non-NaN, no negative
   zero): simulated times only grow from 0 by positive increments. *)
let fmax (a : float) (b : float) = if a >= b then a else b

let run ?telemetry (cfg : Config.t) mem_path ~stats ~traces =
  Config.validate cfg;
  let n_warps = Array.length traces in
  if n_warps = 0 then 0.
  else begin
    Mem_path.begin_kernel mem_path;
    let issue_clock = Array.make cfg.n_sms 0. in
    let pcs = Array.make n_warps 0 in
    let events = Event_heap.create ~capacity:n_warps () in
    let kc = Event_heap.key_cell events in
    let io = Mem_path.io mem_path in
    (* finish.(0) is the kernel completion time; a float array cell
       rather than a [float ref], whose every [:=] would box. *)
    let finish = Array.make 1 0. in
    (* Warps are dealt round-robin to SMs; each SM activates its first
       [max_warps_per_sm] immediately and queues the rest. *)
    let pending = Array.make cfg.n_sms ([] : int list) in
    for i = n_warps - 1 downto 0 do
      let sm = i mod cfg.n_sms in
      pending.(sm) <- i :: pending.(sm)
    done;
    let activate sm now =
      match pending.(sm) with
      | [] -> ()
      | w :: rest ->
        pending.(sm) <- rest;
        kc.(0) <- now;
        Event_heap.push events w
    in
    for sm = 0 to cfg.n_sms - 1 do
      for _ = 1 to cfg.max_warps_per_sm do
        activate sm 0.
      done
    done;
    let issue_cost = 1. /. float_of_int cfg.issue_width in
    let ctrl_lat = float_of_int cfg.ctrl_latency in
    let const_lat = float_of_int cfg.const_latency in
    let call_ind_lat = float_of_int cfg.call_indirect_latency in
    let call_dir_lat = float_of_int cfg.call_direct_latency in
    (match telemetry with
     | None ->
       let stalls = Stats.stall_accumulator stats in
       let rec drain () =
         let w = Event_heap.pop events in
         if w >= 0 then begin
           let ready = kc.(0) in
           let tr = traces.(w) in
           let pc = pcs.(w) in
           let sm = w mod cfg.n_sms in
           if pc >= Trace.length tr then begin
             (* Warp retires; its slot frees for a pending warp. *)
             if ready > finish.(0) then finish.(0) <- ready;
             activate sm ready
           end
           else begin
             pcs.(w) <- pc + 1;
             let op = Trace.op tr pc in
             let lbl = Trace.label_index tr pc in
             let rep = Trace.repeat tr pc in
             Stats.count_classified stats
               (if op = Trace.op_compute then `Compute
                else if op = Trace.op_ctrl || op >= Trace.op_call_indirect then `Ctrl
                else `Mem)
               rep;
             let issue_time = fmax ready issue_clock.(sm) in
             let slots = float_of_int rep *. issue_cost in
             issue_clock.(sm) <- issue_time +. slots;
             let next_ready =
               if op = Trace.op_load then begin
                 io.(0) <- issue_time;
                 Mem_path.load_soa mem_path ~stats ~label_idx:lbl ~sm
                   ~arena:(Trace.arena tr) ~off:(Trace.addr_off tr pc)
                   ~len:(Trace.active tr pc);
                 if Trace.is_blocking tr pc then io.(1) else issue_time +. slots
               end
               else if op = Trace.op_store then begin
                 io.(0) <- issue_time;
                 Mem_path.store_soa mem_path ~stats ~sm ~arena:(Trace.arena tr)
                   ~off:(Trace.addr_off tr pc) ~len:(Trace.active tr pc);
                 issue_time +. slots
               end
               else if op = Trace.op_compute then
                 if Trace.is_blocking tr pc then
                   (* A dependent ALU chain: each op waits on the previous. *)
                   issue_time +. float_of_int (rep * cfg.compute_latency)
                 else issue_time +. slots
               else if op = Trace.op_ctrl then issue_time +. ctrl_lat
               else if op = Trace.op_const_load then issue_time +. const_lat
               else if op = Trace.op_call_indirect then issue_time +. call_ind_lat
               else issue_time +. call_dir_lat
             in
             let stall = next_ready -. issue_time -. slots in
             if stall > 0. then stalls.(lbl) <- stalls.(lbl) +. stall;
             kc.(0) <- next_ready;
             Event_heap.push events w
           end;
           drain ()
         end
       in
       drain ()
     | Some tel ->
       let sampler = tel.Telemetry.sampler in
       let ring = tel.Telemetry.ring in
       (* With sampling on, counters flow into the open window's row;
          [cur]/[stalls] are refs so the rare boundary crossing can swap
          them (a pointer store, no allocation). The infinity mailbox
          makes the per-pop compare uniform when sampling is off. *)
       let bcell =
         match sampler with
         | Some s -> Telemetry.Sampler.boundary_cell s
         | None -> Array.make 1 infinity
       in
       let cur =
         ref
           (match sampler with
            | Some s -> Telemetry.Sampler.current s
            | None -> stats)
       in
       let stalls = ref (Stats.stall_accumulator !cur) in
       let rec drain () =
         let w = Event_heap.pop events in
         if w >= 0 then begin
           let ready = kc.(0) in
           if ready >= bcell.(0) then begin
             match sampler with
             | Some s ->
               Telemetry.Sampler.advance s ~now:ready;
               let row = Telemetry.Sampler.current s in
               cur := row;
               stalls := Stats.stall_accumulator row
             | None -> ()
           end;
           let tr = traces.(w) in
           let pc = pcs.(w) in
           let sm = w mod cfg.n_sms in
           if pc >= Trace.length tr then begin
             if ready > finish.(0) then finish.(0) <- ready;
             activate sm ready
           end
           else begin
             pcs.(w) <- pc + 1;
             let op = Trace.op tr pc in
             let lbl = Trace.label_index tr pc in
             let rep = Trace.repeat tr pc in
             let st = !cur in
             Stats.count_classified st
               (if op = Trace.op_compute then `Compute
                else if op = Trace.op_ctrl || op >= Trace.op_call_indirect then `Ctrl
                else `Mem)
               rep;
             let issue_time = fmax ready issue_clock.(sm) in
             let slots = float_of_int rep *. issue_cost in
             issue_clock.(sm) <- issue_time +. slots;
             let next_ready =
               if op = Trace.op_load then begin
                 io.(0) <- issue_time;
                 Mem_path.load_soa mem_path ~stats:st ~label_idx:lbl ~sm
                   ~arena:(Trace.arena tr) ~off:(Trace.addr_off tr pc)
                   ~len:(Trace.active tr pc);
                 if Trace.is_blocking tr pc then io.(1) else issue_time +. slots
               end
               else if op = Trace.op_store then begin
                 io.(0) <- issue_time;
                 Mem_path.store_soa mem_path ~stats:st ~sm ~arena:(Trace.arena tr)
                   ~off:(Trace.addr_off tr pc) ~len:(Trace.active tr pc);
                 issue_time +. slots
               end
               else if op = Trace.op_compute then
                 if Trace.is_blocking tr pc then
                   issue_time +. float_of_int (rep * cfg.compute_latency)
                 else issue_time +. slots
               else if op = Trace.op_ctrl then issue_time +. ctrl_lat
               else if op = Trace.op_const_load then issue_time +. const_lat
               else if op = Trace.op_call_indirect then issue_time +. call_ind_lat
               else issue_time +. call_dir_lat
             in
             let stall = next_ready -. issue_time -. slots in
             if stall > 0. then begin
               let sa = !stalls in
               sa.(lbl) <- sa.(lbl) +. stall;
               match ring with
               | Some r ->
                 (* Stall span, written field by field (a helper taking
                    ts/dur floats would box them per event). *)
                 let i = r.Telemetry.Ring.head in
                 r.Telemetry.Ring.kind.(i) <- Telemetry.Ring.kind_stall;
                 r.Telemetry.Ring.track.(i) <- sm;
                 r.Telemetry.Ring.arg_a.(i) <- lbl;
                 r.Telemetry.Ring.arg_b.(i) <- w;
                 let t0 = r.Telemetry.Ring.cells.(0) +. issue_time +. slots in
                 r.Telemetry.Ring.ts.(i) <- t0;
                 r.Telemetry.Ring.dur.(i) <- stall;
                 let e = t0 +. stall in
                 if e > r.Telemetry.Ring.cells.(1) then
                   r.Telemetry.Ring.cells.(1) <- e;
                 Telemetry.Ring.bump r
               | None -> ()
             end;
             kc.(0) <- next_ready;
             Event_heap.push events w
           end;
           drain ()
         end
       in
       drain ());
    finish.(0)
  end
