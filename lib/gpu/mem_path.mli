(** Timing of the L1 → L2 → DRAM path.

    Each level has real tag state (hits are emergent) and a bandwidth
    reservation clock: a sector transaction starts no earlier than the
    level's [next_free] time and advances it by the reciprocal throughput.
    Latency accumulates level by level, so an L1 hit costs the L1 latency
    while a DRAM access pays all three. The per-SM L1s are flushed at
    kernel boundaries (CUDA semantics); the L2 persists across launches.

    The [_soa] entry points are the replay path: they read lane addresses
    straight out of a trace arena slice, coalesce into an internal scratch
    buffer, and exchange issue/completion times through the {!io} mailbox
    — no allocation per instruction. The array-based {!load}/{!store} are
    compatibility wrappers over them. *)

type t

val create : Config.t -> t

val io : t -> float array
(** Two-slot float mailbox used by the SoA entry points: the caller
    writes the issue time to [io.(0)] before the call; {!load_soa} writes
    the completion time to [io.(1)]. Communicating times through a float
    array keeps them unboxed across the module boundary (a [float]
    argument or return at a non-inlined call is boxed by ocamlopt). *)

val set_ring : t -> Telemetry.Ring.t option -> unit
(** Attach (or detach) a telemetry event ring. When set, every sector
    transaction is recorded — L1 accesses (per SM), L2 accesses, and
    DRAM transactions — with direct array stores, so the replay path
    stays allocation-free. Timing is unaffected. *)

val set_vm : t -> Repro_vm.Vm.t option -> unit
(** Attach (or detach) an address-translation model. When set, every
    coalesced sector is looked up in the TLB hierarchy before the L1
    (loads) or L2 (stores): hits and walks are counted in [Stats]
    ([tlb.*]), walk intervals are recorded in the event ring when one is
    attached, and the lookup latency delays that sector. Latencies are
    cached in a per-code float table at attach time, so the per-sector
    path stays allocation-free. [None] (the default) leaves the entry
    points on the exact pre-translation code path — byte-identical
    output and no extra per-sector work. *)

val vm : t -> Repro_vm.Vm.t option

val flush_l1s : t -> unit
(** Invalidate the per-SM L1s. *)

val begin_kernel : t -> unit
(** Kernel-launch boundary: flush the L1s (and, when a translation model
    is attached, the per-SM L1 TLBs) and rewind all bandwidth
    reservation clocks to time zero (each launch is timed from 0; the L2
    tag state — data cache and TLB alike — persists across launches). *)

val load_soa :
  t -> stats:Stats.t -> label_idx:int -> sm:int -> arena:int array ->
  off:int -> len:int -> unit
(** Service a warp global load whose lane addresses are
    [arena.(off .. off+len-1)], issued at [io.(0)] on [sm]; writes the
    completion time (max over its coalesced sectors) to [io.(1)]. Counts
    load transactions (under label index [label_idx]), L1/L2 hits and
    DRAM sectors in [stats]. Allocation-free. *)

val store_soa :
  t -> stats:Stats.t -> sm:int -> arena:int array -> off:int -> len:int ->
  unit
(** Service a warp global store from an arena slice, issued at [io.(0)]
    (write-through; consumes L2/DRAM bandwidth and installs sectors in
    the L2, no L1 allocation). Allocation-free. *)

val load :
  t -> stats:Stats.t -> sm:int -> start:float -> label:Label.t ->
  addrs:int array -> float
(** Array-based wrapper over {!load_soa}; returns the completion time.
    Raises [Invalid_argument] when [addrs] has more lanes than the
    configured warp size. *)

val store :
  t -> stats:Stats.t -> sm:int -> start:float -> addrs:int array -> unit
(** Array-based wrapper over {!store_soa}. *)

val reset : t -> unit
(** Full reset: {!begin_kernel} plus an L2 flush (and a full TLB flush
    when a translation model is attached). Used when a run starts a
    fresh measurement region. *)

val l1_probe : t -> sm:int -> sector:int -> bool
(** Test hook. *)

val plain : t -> bool
(** No telemetry ring and no translation model attached — the
    precondition for {!Sm.run_fused}, whose inlined walk reproduces the
    plain branches of {!load_soa}/{!store_soa} exactly. *)

(** Raw timing state for the fused replay loop, hoisted once per launch
    (same contract as {!Cache.Raw}: read/accumulate exactly as the entry
    points above do, never otherwise). *)
module Raw : sig
  val l1s : t -> Cache.t array
  val l2 : t -> Cache.t
  val clk : t -> float array
  (** [clk.(0)] = L2 next-free, [clk.(1)] = DRAM next-free. *)

  val l1_next_free : t -> float array
  val lsu_next_free : t -> float array
  val scratch : t -> int array
  (** Coalescer scratch, [warp_size] entries. *)

  val inv_l1_tp : t -> float
  val inv_l2_tp : t -> float
  val inv_lsu_tp : t -> float
  val inv_dram_cost : t -> float
  val dram_pair_cost : t -> float
  val l1_lat : t -> float
  val l2_lat : t -> float
  val dram_lat : t -> float
  val n_over_l1 : t -> float array
end
