(* Timing of the L1 -> L2 -> DRAM path.

   The replay-path entry points ([load_soa]/[store_soa]) are written to
   allocate nothing: reciprocal throughputs and latencies are precomputed
   once at [create] time, bandwidth clocks live in flat float arrays
   (mutable boxed-float record fields would re-box on every store), the
   coalesced sectors go through a reusable scratch buffer, and the
   issue/completion times cross the [Sm] boundary through the two-slot
   [io] float array instead of boxed argument/return floats. *)

type t = {
  cfg : Config.t;
  l1s : Cache.t array;
  l1_next_free : float array;
  lsu_next_free : float array;
  l2 : Cache.t;
  (* clk.(0) = L2 next-free, clk.(1) = DRAM next-free. *)
  clk : float array;
  (* io.(0): issue time in; io.(1): load completion time out. *)
  io : float array;
  (* Coalescer scratch, warp_size entries. *)
  scratch : int array;
  (* Precomputed per-level costs. Reading a float field never allocates;
     only these are read on the replay path, never written. *)
  inv_l1_tp : float;
  inv_l2_tp : float;
  inv_lsu_tp : float;
  inv_dram_cost : float;   (* 1 sector's DRAM occupancy (stores) *)
  dram_pair_cost : float;  (* 64 B fill = 2 sectors (loads) *)
  l1_lat : float;
  l2_lat : float;
  dram_lat : float;
  (* n_over_l1.(n) = float n /. l1_sector_throughput, n in 0..warp_size:
     the LSU occupancy term without a float_of_int/div per access. *)
  n_over_l1 : float array;
  (* Optional telemetry event ring; when set, every sector transaction
     is recorded by direct array stores (never boxing a float). The
     timing model is oblivious to it. *)
  mutable ring : Telemetry.Ring.t option;
  (* Optional address translation. When set, every coalesced sector is
     looked up in the TLB hierarchy and its outcome priced through
     [vm_lat] — a per-lookup-code latency table precomputed at [set_vm]
     so the per-sector path indexes a float array instead of crossing a
     float-returning function boundary. [None] (the default) keeps the
     entry points on the exact pre-translation code path. *)
  mutable vm : Repro_vm.Vm.t option;
  mutable vm_lat : float array;
}

(* Bit-identical to [Float.max] on this module's domain: times and costs
   are non-NaN and never negative zero. *)
let fmax (a : float) (b : float) = if a >= b then a else b

let create (cfg : Config.t) =
  Config.validate cfg;
  {
    cfg;
    l1s = Array.init cfg.n_sms (fun _ -> Cache.create cfg.l1_geometry);
    l1_next_free = Array.make cfg.n_sms 0.;
    lsu_next_free = Array.make cfg.n_sms 0.;
    l2 = Cache.create cfg.l2_geometry;
    clk = Array.make 2 0.;
    io = Array.make 2 0.;
    scratch = Array.make cfg.warp_size 0;
    inv_l1_tp = 1. /. cfg.l1_sector_throughput;
    inv_l2_tp = 1. /. cfg.l2_sector_throughput;
    inv_lsu_tp = 1. /. cfg.lsu_throughput;
    inv_dram_cost = 1. /. cfg.dram_sector_throughput;
    dram_pair_cost = 2. /. cfg.dram_sector_throughput;
    l1_lat = float_of_int cfg.l1_latency;
    l2_lat = float_of_int cfg.l2_latency;
    dram_lat = float_of_int cfg.dram_latency;
    n_over_l1 =
      Array.init (cfg.warp_size + 1) (fun n ->
          float_of_int n /. cfg.l1_sector_throughput);
    ring = None;
    vm = None;
    vm_lat = Array.make (Repro_vm.Vm.max_code + 1) 0.;
  }

let io t = t.io

let set_ring t ring = t.ring <- ring

let set_vm t vm =
  t.vm <- vm;
  match vm with
  | None -> Array.fill t.vm_lat 0 (Array.length t.vm_lat) 0.
  | Some v ->
    for code = 0 to Repro_vm.Vm.max_code do
      t.vm_lat.(code) <- Repro_vm.Vm.latency_of_code v code
    done

let vm t = t.vm

(* Write one event at the ring head by direct stores. Local and small,
   so ocamlopt inlines it and the float arguments stay in registers —
   the per-sector recording path allocates nothing. *)
let[@inline] emit r kind track a b ts dur =
  (* [head] < capacity always (Ring.bump wraps it), and the six arrays
     share that capacity, so the unsafe stores are in bounds. *)
  let i = r.Telemetry.Ring.head in
  Array.unsafe_set r.Telemetry.Ring.kind i kind;
  Array.unsafe_set r.Telemetry.Ring.track i track;
  Array.unsafe_set r.Telemetry.Ring.arg_a i a;
  Array.unsafe_set r.Telemetry.Ring.arg_b i b;
  let abs_ts = Array.unsafe_get r.Telemetry.Ring.cells 0 +. ts in
  Array.unsafe_set r.Telemetry.Ring.ts i abs_ts;
  Array.unsafe_set r.Telemetry.Ring.dur i dur;
  let e = abs_ts +. dur in
  if e > Array.unsafe_get r.Telemetry.Ring.cells 1 then
    Array.unsafe_set r.Telemetry.Ring.cells 1 e;
  Telemetry.Ring.bump r

let flush_l1s t = Array.iter Cache.flush t.l1s

let begin_kernel t =
  flush_l1s t;
  (* L1 TLBs flush with the L1 data caches; the shared L2 TLB persists
     across launches like the L2 data cache. *)
  (match t.vm with
   | Some v -> Repro_vm.Vm.flush_l1s v
   | None -> ());
  Array.fill t.l1_next_free 0 (Array.length t.l1_next_free) 0.;
  Array.fill t.lsu_next_free 0 (Array.length t.lsu_next_free) 0.;
  t.clk.(0) <- 0.;
  t.clk.(1) <- 0.

(* The LSU acceptance step (the warp access starts no earlier than the
   SM's LSU is free and occupies it for max(issue slot, sector drain)) is
   written out in both entry points rather than shared: a non-inlined
   function returning a float would box its result on every access. *)

let load_soa t ~stats ~label_idx ~sm ~arena ~off ~len =
  let n = Coalesce.sectors_into ~buf:t.scratch arena ~off ~len in
  Stats.count_load_transactions_idx stats label_idx n;
  let t0 = fmax t.io.(0) t.lsu_next_free.(sm) in
  t.lsu_next_free.(sm) <- t0 +. fmax t.inv_lsu_tp t.n_over_l1.(n);
  t.io.(1) <- t0;
  let ring = t.ring in
  match t.vm with
  | None ->
  for i = 0 to n - 1 do
    let sector = t.scratch.(i) in
    (* One sector through the hierarchy: bandwidth reservation at each
       level it reaches, cumulative latency down to the level that hits.
       The completion time folds into io.(1) by replace-if-greater at
       each leaf so no float crosses a join point. *)
    let t1 = fmax t0 t.l1_next_free.(sm) in
    t.l1_next_free.(sm) <- t1 +. t.inv_l1_tp;
    match Cache.access t.l1s.(sm) ~sector with
    | `Hit ->
      Stats.count_l1 stats ~hit:true;
      (match ring with
       | Some r -> emit r Telemetry.Ring.kind_l1 sm 1 sector t1 t.l1_lat
       | None -> ());
      let c = t1 +. t.l1_lat in
      if c > t.io.(1) then t.io.(1) <- c
    | `Miss ->
      Stats.count_l1 stats ~hit:false;
      (match ring with
       | Some r -> emit r Telemetry.Ring.kind_l1 sm 0 sector t1 0.
       | None -> ());
      let t2 = fmax (t1 +. t.l1_lat) t.clk.(0) in
      t.clk.(0) <- t2 +. t.inv_l2_tp;
      (match Cache.access t.l2 ~sector with
       | `Hit ->
         Stats.count_l2 stats ~hit:true;
         (match ring with
          | Some r -> emit r Telemetry.Ring.kind_l2 sm 1 sector t2 t.l2_lat
          | None -> ());
         let c = t2 +. t.l2_lat in
         if c > t.io.(1) then t.io.(1) <- c
       | `Miss ->
         Stats.count_l2 stats ~hit:false;
         (match ring with
          | Some r -> emit r Telemetry.Ring.kind_l2 sm 0 sector t2 0.
          | None -> ());
         (* DRAM is accessed at 64 B granularity (Volta's L2 fill size):
            the missing sector and its pair are both fetched and
            installed. Padded or scattered objects waste the pair half;
            packed objects find their neighbour in it — a first-order
            reason type-based packing wins (Sec. 8.2). *)
         Stats.count_dram_sector stats;
         Stats.count_dram_sector stats;
         ignore (Cache.access t.l2 ~sector:(sector lxor 1));
         let t3 = fmax (t2 +. t.l2_lat) t.clk.(1) in
         t.clk.(1) <- t3 +. t.dram_pair_cost;
         (match ring with
          | Some r -> emit r Telemetry.Ring.kind_dram sm 2 sector t3 t.dram_lat
          | None -> ());
         let c = t3 +. t.dram_lat in
         if c > t.io.(1) then t.io.(1) <- c)
  done
  | Some vm ->
  (* Same walk of the hierarchy, prefixed by an address translation per
     sector: the lookup code indexes [vm_lat] (0 on an L1 TLB hit), and
     the translation delay pushes this sector's L1 issue time the same
     way L1 arbitration does. Duplicated rather than branched per sector
     so the [None] path above stays byte-for-byte the pre-vm model. *)
  for i = 0 to n - 1 do
    let sector = t.scratch.(i) in
    let code = Repro_vm.Vm.lookup vm ~sm ~sector in
    let tx = Array.unsafe_get t.vm_lat code in
    (if code = 0 then Stats.count_tlb_l1_hit stats
     else if code = 1 then Stats.count_tlb_l2_hit stats
     else begin
       Stats.count_tlb_walk stats tx;
       match ring with
       | Some r -> emit r Telemetry.Ring.kind_tlb sm (code - 2) sector t0 tx
       | None -> ()
     end);
    let t1 = fmax (t0 +. tx) t.l1_next_free.(sm) in
    t.l1_next_free.(sm) <- t1 +. t.inv_l1_tp;
    match Cache.access t.l1s.(sm) ~sector with
    | `Hit ->
      Stats.count_l1 stats ~hit:true;
      (match ring with
       | Some r -> emit r Telemetry.Ring.kind_l1 sm 1 sector t1 t.l1_lat
       | None -> ());
      let c = t1 +. t.l1_lat in
      if c > t.io.(1) then t.io.(1) <- c
    | `Miss ->
      Stats.count_l1 stats ~hit:false;
      (match ring with
       | Some r -> emit r Telemetry.Ring.kind_l1 sm 0 sector t1 0.
       | None -> ());
      let t2 = fmax (t1 +. t.l1_lat) t.clk.(0) in
      t.clk.(0) <- t2 +. t.inv_l2_tp;
      (match Cache.access t.l2 ~sector with
       | `Hit ->
         Stats.count_l2 stats ~hit:true;
         (match ring with
          | Some r -> emit r Telemetry.Ring.kind_l2 sm 1 sector t2 t.l2_lat
          | None -> ());
         let c = t2 +. t.l2_lat in
         if c > t.io.(1) then t.io.(1) <- c
       | `Miss ->
         Stats.count_l2 stats ~hit:false;
         (match ring with
          | Some r -> emit r Telemetry.Ring.kind_l2 sm 0 sector t2 0.
          | None -> ());
         Stats.count_dram_sector stats;
         Stats.count_dram_sector stats;
         ignore (Cache.access t.l2 ~sector:(sector lxor 1));
         let t3 = fmax (t2 +. t.l2_lat) t.clk.(1) in
         t.clk.(1) <- t3 +. t.dram_pair_cost;
         (match ring with
          | Some r -> emit r Telemetry.Ring.kind_dram sm 2 sector t3 t.dram_lat
          | None -> ());
         let c = t3 +. t.dram_lat in
         if c > t.io.(1) then t.io.(1) <- c)
  done

let store_soa t ~stats ~sm ~arena ~off ~len =
  let n = Coalesce.sectors_into ~buf:t.scratch arena ~off ~len in
  Stats.count_store_transactions stats n;
  let t0 = fmax t.io.(0) t.lsu_next_free.(sm) in
  t.lsu_next_free.(sm) <- t0 +. fmax t.inv_lsu_tp t.n_over_l1.(n);
  let ring = t.ring in
  match t.vm with
  | None ->
  for i = 0 to n - 1 do
    let sector = t.scratch.(i) in
    (* Write-through: every store sector consumes L2 bandwidth and is
       installed there; an L2 miss additionally consumes DRAM bandwidth.
       Store events are instants (dur 0): the warp does not wait on
       them, and the DRAM drain can outlive the kernel's last warp. *)
    let t2 = fmax t0 t.clk.(0) in
    t.clk.(0) <- t2 +. t.inv_l2_tp;
    match Cache.access t.l2 ~sector with
    | `Hit ->
      (match ring with
       | Some r -> emit r Telemetry.Ring.kind_l2 sm 3 sector t2 0.
       | None -> ())
    | `Miss ->
      (match ring with
       | Some r -> emit r Telemetry.Ring.kind_l2 sm 2 sector t2 0.
       | None -> ());
      Stats.count_dram_sector stats;
      let t3 = fmax t2 t.clk.(1) in
      t.clk.(1) <- t3 +. t.inv_dram_cost;
      (match ring with
       | Some r -> emit r Telemetry.Ring.kind_dram sm 1 sector t3 0.
       | None -> ())
  done
  | Some vm ->
  (* Stores translate too: the sector cannot reach L2 before its page
     does, so the walk delay feeds the L2 arbitration time. *)
  for i = 0 to n - 1 do
    let sector = t.scratch.(i) in
    let code = Repro_vm.Vm.lookup vm ~sm ~sector in
    let tx = Array.unsafe_get t.vm_lat code in
    (if code = 0 then Stats.count_tlb_l1_hit stats
     else if code = 1 then Stats.count_tlb_l2_hit stats
     else begin
       Stats.count_tlb_walk stats tx;
       match ring with
       | Some r -> emit r Telemetry.Ring.kind_tlb sm (code - 2) sector t0 tx
       | None -> ()
     end);
    let t2 = fmax (t0 +. tx) t.clk.(0) in
    t.clk.(0) <- t2 +. t.inv_l2_tp;
    match Cache.access t.l2 ~sector with
    | `Hit ->
      (match ring with
       | Some r -> emit r Telemetry.Ring.kind_l2 sm 3 sector t2 0.
       | None -> ())
    | `Miss ->
      (match ring with
       | Some r -> emit r Telemetry.Ring.kind_l2 sm 2 sector t2 0.
       | None -> ());
      Stats.count_dram_sector stats;
      let t3 = fmax t2 t.clk.(1) in
      t.clk.(1) <- t3 +. t.inv_dram_cost;
      (match ring with
       | Some r -> emit r Telemetry.Ring.kind_dram sm 1 sector t3 0.
       | None -> ())
  done

(* Legacy array-of-addresses entry points, kept for tests and non-hot
   callers; they route through the SoA path via the io mailbox. *)

let check_lanes name addrs scratch =
  if Array.length addrs > Array.length scratch then
    invalid_arg (name ^ ": more lanes than the warp size")

let load t ~stats ~sm ~start ~label ~addrs =
  check_lanes "Mem_path.load" addrs t.scratch;
  t.io.(0) <- start;
  load_soa t ~stats ~label_idx:(Label.to_index label) ~sm ~arena:addrs ~off:0
    ~len:(Array.length addrs);
  t.io.(1)

let store t ~stats ~sm ~start ~addrs =
  check_lanes "Mem_path.store" addrs t.scratch;
  t.io.(0) <- start;
  store_soa t ~stats ~sm ~arena:addrs ~off:0 ~len:(Array.length addrs)

let reset t =
  begin_kernel t;
  Cache.flush t.l2;
  match t.vm with
  | Some v -> Repro_vm.Vm.flush v
  | None -> ()

let l1_probe t ~sm ~sector = Cache.probe t.l1s.(sm) ~sector

(* True when neither telemetry recording nor address translation is
   attached: the precondition for the fused replay loop, whose inlined
   hierarchy walk reproduces exactly the [None]/[None] branches above. *)
let plain t = t.ring = None && t.vm = None

(* Raw state for the fused replay loop (same contract as {!Cache.Raw}):
   hoisted once per launch, then the per-access path is direct array
   arithmetic. *)
module Raw = struct
  let l1s t = t.l1s
  let l2 t = t.l2
  let clk t = t.clk
  let l1_next_free t = t.l1_next_free
  let lsu_next_free t = t.lsu_next_free
  let scratch t = t.scratch
  let inv_l1_tp t = t.inv_l1_tp
  let inv_l2_tp t = t.inv_l2_tp
  let inv_lsu_tp t = t.inv_lsu_tp
  let inv_dram_cost t = t.inv_dram_cost
  let dram_pair_cost t = t.dram_pair_cost
  let l1_lat t = t.l1_lat
  let l2_lat t = t.l2_lat
  let dram_lat t = t.dram_lat
  let n_over_l1 t = t.n_over_l1
end
