type t = {
  cfg : Config.t;
  l1s : Cache.t array;
  l1_next_free : float array;
  lsu_next_free : float array;
  l2 : Cache.t;
  mutable l2_next_free : float;
  mutable dram_next_free : float;
}

let create (cfg : Config.t) =
  Config.validate cfg;
  {
    cfg;
    l1s = Array.init cfg.n_sms (fun _ -> Cache.create cfg.l1_geometry);
    l1_next_free = Array.make cfg.n_sms 0.;
    lsu_next_free = Array.make cfg.n_sms 0.;
    l2 = Cache.create cfg.l2_geometry;
    l2_next_free = 0.;
    dram_next_free = 0.;
  }

let flush_l1s t = Array.iter Cache.flush t.l1s

let begin_kernel t =
  flush_l1s t;
  Array.fill t.l1_next_free 0 (Array.length t.l1_next_free) 0.;
  Array.fill t.lsu_next_free 0 (Array.length t.lsu_next_free) 0.;
  t.l2_next_free <- 0.;
  t.dram_next_free <- 0.

(* One sector through the hierarchy: bandwidth reservation at each level it
   reaches, cumulative latency down to the level that hits. *)
let serve_load_sector t ~stats ~sm ~start sector =
  let cfg = t.cfg in
  let t1 = Float.max start t.l1_next_free.(sm) in
  t.l1_next_free.(sm) <- t1 +. (1. /. cfg.l1_sector_throughput);
  match Cache.access t.l1s.(sm) ~sector with
  | `Hit ->
    Stats.count_l1 stats ~hit:true;
    t1 +. float_of_int cfg.l1_latency
  | `Miss ->
    Stats.count_l1 stats ~hit:false;
    let t2 = Float.max (t1 +. float_of_int cfg.l1_latency) t.l2_next_free in
    t.l2_next_free <- t2 +. (1. /. cfg.l2_sector_throughput);
    (match Cache.access t.l2 ~sector with
     | `Hit ->
       Stats.count_l2 stats ~hit:true;
       t2 +. float_of_int cfg.l2_latency
     | `Miss ->
       Stats.count_l2 stats ~hit:false;
       (* DRAM is accessed at 64 B granularity (Volta's L2 fill size):
          the missing sector and its pair are both fetched and installed.
          Padded or scattered objects waste the pair half; packed objects
          find their neighbour in it — a first-order reason type-based
          packing wins (Sec. 8.2). *)
       Stats.count_dram_sector stats;
       Stats.count_dram_sector stats;
       ignore (Cache.access t.l2 ~sector:(sector lxor 1));
       let t3 = Float.max (t2 +. float_of_int cfg.l2_latency) t.dram_next_free in
       t.dram_next_free <- t3 +. (2. /. cfg.dram_sector_throughput);
       t3 +. float_of_int cfg.dram_latency)

let accept_lsu t ~sm ~start ~n_sectors =
  let cfg = t.cfg in
  let t0 = Float.max start t.lsu_next_free.(sm) in
  let occupancy =
    Float.max
      (1. /. cfg.lsu_throughput)
      (float_of_int n_sectors /. cfg.l1_sector_throughput)
  in
  t.lsu_next_free.(sm) <- t0 +. occupancy;
  t0

let load t ~stats ~sm ~start ~label ~addrs =
  let sectors = Coalesce.sectors addrs in
  let n = Array.length sectors in
  Stats.count_load_transactions stats label n;
  let t0 = accept_lsu t ~sm ~start ~n_sectors:n in
  Array.fold_left
    (fun acc sector -> Float.max acc (serve_load_sector t ~stats ~sm ~start:t0 sector))
    t0 sectors

let store t ~stats ~sm ~start ~addrs =
  let cfg = t.cfg in
  let sectors = Coalesce.sectors addrs in
  let n = Array.length sectors in
  Stats.count_store_transactions stats n;
  let t0 = accept_lsu t ~sm ~start ~n_sectors:n in
  Array.iter
    (fun sector ->
      (* Write-through: every store sector consumes L2 bandwidth and is
         installed there; an L2 miss additionally consumes DRAM bandwidth. *)
      let t2 = Float.max t0 t.l2_next_free in
      t.l2_next_free <- t2 +. (1. /. cfg.l2_sector_throughput);
      match Cache.access t.l2 ~sector with
      | `Hit -> ()
      | `Miss ->
        Stats.count_dram_sector stats;
        let t3 = Float.max t2 t.dram_next_free in
        t.dram_next_free <- t3 +. (1. /. cfg.dram_sector_throughput))
    sectors

let reset t =
  begin_kernel t;
  Cache.flush t.l2

let l1_probe t ~sm ~sector = Cache.probe t.l1s.(sm) ~sector
