(* Warp-level memory coalescing: per-lane byte addresses -> the distinct
   32 B sectors they touch, in ascending order.

   [sectors_into] is the replay-path version: a monomorphic insertion sort
   into a caller-owned scratch buffer (warps are at most 32 lanes, so the
   sorted prefix is tiny and insertion sort beats a general sort with a
   polymorphic comparator by a wide margin), deduplicating as it inserts
   and allocating nothing. [sectors] is the naive reference kept for tests
   and non-hot callers. *)

let sector_mask = Repro_mem.Vaddr.va_mask

let sector_shift = Repro_mem.Vaddr.sector_shift

(* Insert the distinct ascending sector ids of [addrs.(off .. off+len-1)]
   into [buf.(0 .. )]; returns how many were written. [buf] must have at
   least [len] entries. Tag bits are ignored ([Vaddr.strip] semantics). *)
let sectors_into ~buf addrs ~off ~len =
  let n = ref 0 in
  for k = off to off + len - 1 do
    let s = (addrs.(k) land sector_mask) lsr sector_shift in
    (* Find the insertion point from the right of the sorted prefix. *)
    let i = ref (!n - 1) in
    while !i >= 0 && buf.(!i) > s do
      decr i
    done;
    if not (!i >= 0 && buf.(!i) = s) then begin
      (* Shift the tail right and insert. *)
      let j = ref (!n - 1) in
      while !j > !i do
        buf.(!j + 1) <- buf.(!j);
        decr j
      done;
      buf.(!i + 1) <- s;
      incr n
    end
  done;
  !n

(* [sectors_into] with the per-element bounds checks elided — the fused
   replay loop's variant, where [off]/[len] come straight from trace
   columns (in range by construction) and [buf] is the memory path's
   warp-wide scratch. Same insertion order, same result. *)
let sectors_into_unsafe ~buf addrs ~off ~len =
  let n = ref 0 in
  for k = off to off + len - 1 do
    let s = (Array.unsafe_get addrs k land sector_mask) lsr sector_shift in
    let i = ref (!n - 1) in
    while !i >= 0 && Array.unsafe_get buf !i > s do
      decr i
    done;
    if not (!i >= 0 && Array.unsafe_get buf !i = s) then begin
      let j = ref (!n - 1) in
      while !j > !i do
        Array.unsafe_set buf (!j + 1) (Array.unsafe_get buf !j);
        decr j
      done;
      Array.unsafe_set buf (!i + 1) s;
      incr n
    end
  done;
  !n

let sectors addrs =
  let s = Array.map Repro_mem.Vaddr.sector_of addrs in
  Array.sort compare s;
  let n = Array.length s in
  let distinct = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 || s.(i) <> s.(i - 1) then begin
      s.(!distinct) <- s.(i);
      incr distinct
    end
  done;
  Array.sub s 0 !distinct

let transaction_count addrs = Array.length (sectors addrs)
