(** Phase-2 timing: the quantized event-driven warp scheduler.

    All SMs are co-simulated in one event loop because they contend for
    the shared L2 and DRAM. Each SM owns an issue clock (bounding its
    instructions per cycle), an LSU/L1 (via {!Mem_path}) and a residency
    limit: warps beyond [max_warps_per_sm] wait and activate as resident
    warps retire — the wave behaviour of a real launch.

    Blocking instructions stall their warp until completion; the stall
    (completion minus issue) is attributed to the instruction's label,
    which is how the Figure 1b latency breakdown is measured. *)

val run :
  ?telemetry:Telemetry.t ->
  Config.t -> Mem_path.t -> stats:Stats.t -> traces:Trace.t array -> float
(** Simulate one kernel launch whose warp [i] executes [traces.(i)] on SM
    [i mod n_sms]; returns the completion time in cycles (0. for an empty
    launch). Counters (instructions, transactions, hits, stalls) are
    accumulated into [stats]; the caller adds the returned cycles.

    When [telemetry] carries a sampler the caller must bracket the run
    with [Sampler.begin_launch]/[finish_launch]; counters then flow into
    the sampler's per-window rows instead of [stats] (fold the rows to
    get the launch totals — bit-exact by construction). When it carries
    a ring, warp stall intervals are recorded as events (memory-system
    events come from {!Mem_path}, whose ring must be set separately).
    Without [telemetry] the loop is the untouched zero-allocation replay
    path. *)

val run_fused :
  Config.t -> Mem_path.t -> stats:Stats.t -> traces:Trace.t array -> float
(** [run]'s fused twin: the same event order and the same float
    operations in the same sequence — cycles and every counter are
    byte-identical to [run]'s — with the per-instruction call chain
    (trace accessors, [Cache.access], the [Mem_path] hierarchy walk,
    the event heap) inlined over state hoisted once per launch, and
    scalar counters flushed to [stats] in one exact integer add per
    launch. This is the interned engine's replay path ([Engine.intern],
    gated in [Device]); [run] remains the reference for the legacy
    engine, telemetry and address translation. Raises [Invalid_argument]
    unless the memory path is plain (no ring, no vm). *)

val run_sharded :
  Config.t -> shards:Mem_path.t array -> jobs:int -> stats:Stats.t ->
  traces:Trace.t array -> float
(** Intra-launch sharded timing: SM [s] replays its warps ([s, s+n_sms,
    ...], the sequential engine's dealing, in the same order) against
    [shards.(s)], a memory path built from {!Config.slice} — its own L1
    plus a private [1/n_sms] slice of L2 capacity and L2/DRAM bandwidth.
    Shards are independent, so they replay on up to [jobs] domains; the
    per-SM stats are merged into [stats] in SM order and the returned
    completion time is the slowest shard's. The result is deterministic
    and byte-identical for every [jobs] value, but the statically-sliced
    memory system is a (documented) modelling deviation from the
    shared-L2 sequential engine, which is why the sharded engine is
    opt-in and recorded in job keys. [shards] must have length [n_sms]
    and persists across launches (the L2 slices keep their tag state,
    like the sequential L2). *)
