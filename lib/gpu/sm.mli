(** Phase-2 timing: the quantized event-driven warp scheduler.

    All SMs are co-simulated in one event loop because they contend for
    the shared L2 and DRAM. Each SM owns an issue clock (bounding its
    instructions per cycle), an LSU/L1 (via {!Mem_path}) and a residency
    limit: warps beyond [max_warps_per_sm] wait and activate as resident
    warps retire — the wave behaviour of a real launch.

    Blocking instructions stall their warp until completion; the stall
    (completion minus issue) is attributed to the instruction's label,
    which is how the Figure 1b latency breakdown is measured. *)

val run :
  ?telemetry:Telemetry.t ->
  Config.t -> Mem_path.t -> stats:Stats.t -> traces:Trace.t array -> float
(** Simulate one kernel launch whose warp [i] executes [traces.(i)] on SM
    [i mod n_sms]; returns the completion time in cycles (0. for an empty
    launch). Counters (instructions, transactions, hits, stalls) are
    accumulated into [stats]; the caller adds the returned cycles.

    When [telemetry] carries a sampler the caller must bracket the run
    with [Sampler.begin_launch]/[finish_launch]; counters then flow into
    the sampler's per-window rows instead of [stats] (fold the rows to
    get the launch totals — bit-exact by construction). When it carries
    a ring, warp stall intervals are recorded as events (memory-system
    events come from {!Mem_path}, whose ring must be set separately).
    Without [telemetry] the loop is the untouched zero-allocation replay
    path. *)
