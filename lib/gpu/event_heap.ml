(* Flat binary min-heap for the replay event loop: float keys in a bare
   float array, int payloads, FIFO tie-break via an insertion sequence —
   the same ordering contract as Repro_util.Heap, monomorphized so that a
   push/pop cycle allocates nothing (floats cross the API through the
   [key_cell] mailbox instead of boxed arguments and results). *)

type t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable vals : int array;
  mutable len : int;
  mutable next_seq : int;
  cell : float array; (* length 1: key in for push, key out for pop *)
}

let create ?(capacity = 16) () =
  let capacity = max 1 capacity in
  {
    keys = Array.make capacity 0.;
    seqs = Array.make capacity 0;
    vals = Array.make capacity 0;
    len = 0;
    next_seq = 0;
    cell = [| 0. |];
  }

let length t = t.len

let is_empty t = t.len = 0

let key_cell t = t.cell

let clear t =
  t.len <- 0;
  t.next_seq <- 0

(* less-than of entries i and j: (key, seq) lexicographic. *)
let less t i j =
  t.keys.(i) < t.keys.(j) || (t.keys.(i) = t.keys.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t l !smallest then smallest := l;
  if r < t.len && less t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let cap = max 16 (2 * Array.length t.keys) in
  let keys = Array.make cap 0. in
  Array.blit t.keys 0 keys 0 t.len;
  t.keys <- keys;
  let seqs = Array.make cap 0 in
  Array.blit t.seqs 0 seqs 0 t.len;
  t.seqs <- seqs;
  let vals = Array.make cap 0 in
  Array.blit t.vals 0 vals 0 t.len;
  t.vals <- vals

let push t v =
  if t.len >= Array.length t.keys then grow t;
  let i = t.len in
  t.keys.(i) <- t.cell.(0);
  t.seqs.(i) <- t.next_seq;
  t.vals.(i) <- v;
  t.next_seq <- t.next_seq + 1;
  t.len <- i + 1;
  sift_up t i

let pop t =
  if t.len = 0 then -1
  else begin
    let v = t.vals.(0) in
    t.cell.(0) <- t.keys.(0);
    t.len <- t.len - 1;
    if t.len > 0 then begin
      let n = t.len in
      t.keys.(0) <- t.keys.(n);
      t.seqs.(0) <- t.seqs.(n);
      t.vals.(0) <- t.vals.(n);
      sift_down t 0
    end;
    v
  end
