type point = {
  group : string;
  series : string;
  value : float;
}

type t = {
  name : string;
  title : string;
  group_label : string;
  aggregate : string option;
  points : point list;
}

let make ~name ~title ?(group_label = "workload") ?aggregate points =
  { name; title; group_label; aggregate; points }

let groups points =
  List.fold_left
    (fun acc p -> if List.mem p.group acc then acc else acc @ [ p.group ])
    [] points

let series_names points =
  List.fold_left
    (fun acc p -> if List.mem p.series acc then acc else acc @ [ p.series ])
    [] points

let normalize_to ~baseline points =
  List.map
    (fun p ->
      let base =
        match
          List.find_opt (fun q -> q.group = p.group && q.series = baseline) points
        with
        | Some q when q.value <> 0. -> q.value
        | Some _ -> failwith ("Series.normalize_to: zero baseline in " ^ p.group)
        | None -> failwith ("Series.normalize_to: no baseline in " ^ p.group)
      in
      { p with value = p.value /. base })
    points

let invert = List.map (fun p -> { p with value = 1. /. p.value })

let aggregate_row ~label ~f points =
  let by_series =
    List.map
      (fun s ->
        let values =
          List.filter_map (fun p -> if p.series = s then Some p.value else None) points
        in
        { group = label; series = s; value = f values })
      (series_names points)
  in
  points @ by_series

let geomean_row ~label points =
  aggregate_row ~label ~f:Repro_util.Mathx.geomean points

let mean_row ~label points = aggregate_row ~label ~f:Repro_util.Mathx.mean points

let by_group points =
  List.map
    (fun g ->
      ( g,
        List.filter_map
          (fun p -> if p.group = g then Some (p.series, p.value) else None)
          points ))
    (groups points)

let value points ~group ~series =
  match List.find_opt (fun p -> p.group = group && p.series = series) points with
  | Some p -> p.value
  | None -> raise Not_found

let to_csv points =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "group,series,value\n";
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "%s,%s,%f\n" p.group p.series p.value))
    points;
  Buffer.contents buf

let csv t = to_csv t.points
