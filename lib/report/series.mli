(** The one data structure behind every figure and table.

    A figure is built once as a named [t] — a list of (group, series,
    value) points plus presentation metadata — and then rendered N ways:
    as ASCII charts ({!Chart}), as text tables ({!Table} via
    [Figview.render_table]), or exported as JSON/CSV by
    [Repro_obs.Sink]. The normalization and aggregation helpers below
    operate on the raw point lists figures are assembled from. *)

type point = {
  group : string;   (** e.g. the workload. *)
  series : string;  (** e.g. the technique. *)
  value : float;
}

type t = {
  name : string;            (** Stable id, e.g. ["fig6"]. *)
  title : string;           (** Human caption for rendering. *)
  group_label : string;     (** Header for the group column. *)
  aggregate : string option;
  (** Group label of an appended aggregate row ("GM"/"AVG"), when one
      was added with {!geomean_row} or {!mean_row}. *)
  points : point list;
}

val make :
  name:string -> title:string -> ?group_label:string ->
  ?aggregate:string -> point list -> t
(** [group_label] defaults to ["workload"]. *)

val csv : t -> string
(** {!to_csv} on the points. *)

val groups : point list -> string list
(** Distinct group names in first-appearance order. *)

val series_names : point list -> string list
(** Distinct series names in first-appearance order (e.g. the technique
    columns of a figure, in sweep order). *)

val normalize_to : baseline:string -> point list -> point list
(** Divide every group's points by that group's [baseline]-series value.
    Raises [Failure] when a group lacks the baseline or it is zero. *)

val invert : point list -> point list
(** 1/x on every point (cycles → relative performance). *)

val geomean_row : label:string -> point list -> point list
(** Append one extra group holding the per-series geometric mean
    (the paper's GM column). *)

val mean_row : label:string -> point list -> point list
(** Like {!geomean_row} with the arithmetic mean (AVG rows). *)

val by_group : point list -> (string * (string * float) list) list
(** Group points preserving first-appearance order (for charts). *)

val value : point list -> group:string -> series:string -> float
(** Lookup; raises [Not_found]. *)

val to_csv : point list -> string
(** "group,series,value" lines with a header. *)
